// VariabilityStudy facade: studies sharing one solve context (and one cached
// ROM) must equal fresh free-function runs bitwise, and a sweep study plus a
// transient study on one facade must pay exactly ONE symbolic LU analysis.

#include <gtest/gtest.h>

#include "analysis/freq_sweep.h"
#include "analysis/monte_carlo.h"
#include "analysis/transient_batch.h"
#include "analysis/variability_study.h"
#include "circuit/mna.h"
#include "la/ops.h"
#include "mor/lowrank_pmor.h"
#include "mor_test_utils.h"

namespace varmor::analysis {
namespace {

using la::ZMatrix;

void expect_bit_identical(const std::vector<ZMatrix>& a, const std::vector<ZMatrix>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].rows(), b[i].rows());
        ASSERT_EQ(a[i].cols(), b[i].cols());
        for (std::size_t k = 0; k < a[i].raw().size(); ++k) {
            EXPECT_EQ(a[i].raw()[k].real(), b[i].raw()[k].real()) << "point " << i;
            EXPECT_EQ(a[i].raw()[k].imag(), b[i].raw()[k].imag()) << "point " << i;
        }
    }
}

void expect_bit_identical(const TransientResult& a, const TransientResult& b) {
    ASSERT_EQ(a.time.size(), b.time.size());
    for (std::size_t i = 0; i < a.time.size(); ++i) EXPECT_EQ(a.time[i], b.time[i]);
    ASSERT_EQ(a.ports.size(), b.ports.size());
    for (std::size_t k = 0; k < a.ports.size(); ++k) {
        ASSERT_EQ(a.ports[k].size(), b.ports[k].size());
        for (std::size_t i = 0; i < a.ports[k].size(); ++i)
            EXPECT_EQ(a.ports[k][i], b.ports[k][i]) << "port " << k << " step " << i;
    }
}

circuit::ParametricSystem test_system() {
    return varmor::testing::small_parametric_rc(30, 2, 77);
}

TEST(VariabilityStudy, SweepPlusTransientPayOneSymbolicAnalysis) {
    VariabilityStudy study(test_system());
    EXPECT_EQ(study.context().symbolic_analyses(), 0);

    const auto freqs = log_frequencies(1e-3, 1.0, 7);
    (void)study.sweep({0.1, -0.1}, freqs);
    EXPECT_EQ(study.context().symbolic_analyses(), 1);

    TransientStudyOptions topts;
    topts.transient.t_stop = 10.0;
    topts.transient.dt = 0.5;
    (void)study.transient({{0.0, 0.0}, {0.2, -0.1}}, topts);
    // The trapezoid pencils carry the same union(G, C) pattern as the sweep
    // pencil, so the transient study reuses the sweep's analysis.
    EXPECT_EQ(study.context().symbolic_analyses(), 1);

    // More studies, same analysis.
    (void)study.sweep({0.0, 0.0}, freqs);
    (void)study.transient({{0.1, 0.1}}, topts);
    EXPECT_EQ(study.context().symbolic_analyses(), 1);
}

TEST(VariabilityStudy, RepeatedStudiesOnOneContextMatchFreshRuns) {
    const circuit::ParametricSystem sys = test_system();
    VariabilityStudy study(sys);
    const auto freqs = log_frequencies(1e-3, 1.0, 9);
    const std::vector<double> p{0.15, -0.2};

    // Two sweeps on the shared context == two fresh one-shot runs.
    const auto fresh = sweep_full(sys, p, freqs);
    expect_bit_identical(fresh, study.sweep(p, freqs));
    expect_bit_identical(fresh, study.sweep(p, freqs));

    // Transient study after the sweeps (warm context) == a fresh study.
    TransientStudyOptions topts;
    topts.transient.t_stop = 12.0;
    topts.transient.dt = 0.25;
    const std::vector<std::vector<double>> corners{{0.0, 0.0}, {0.2, -0.1}, {-0.3, 0.3}};
    const TransientStudy fresh_study = transient_study(sys, corners, topts);
    const TransientStudy shared_study = study.transient(corners, topts);
    ASSERT_EQ(shared_study.waveforms.size(), fresh_study.waveforms.size());
    for (std::size_t k = 0; k < corners.size(); ++k)
        expect_bit_identical(fresh_study.waveforms[k], shared_study.waveforms[k]);
    EXPECT_EQ(shared_study.level, fresh_study.level);
    EXPECT_EQ(shared_study.mean_delay, fresh_study.mean_delay);
    EXPECT_EQ(shared_study.sigma_delay, fresh_study.sigma_delay);
}

TEST(VariabilityStudy, CachedRomSharedAcrossStudies) {
    const circuit::ParametricSystem sys = test_system();
    VariabilityStudy study(sys);
    EXPECT_FALSE(study.has_rom());
    EXPECT_THROW(study.rom_engine(), Error);

    mor::LowRankPmorOptions ropts;
    ropts.s_order = 3;
    ropts.param_order = 2;
    const mor::ReducedModel& rom = study.rom(ropts);
    EXPECT_TRUE(study.has_rom());
    // Second call returns the SAME cached model (no rebuild).
    EXPECT_EQ(&rom, &study.rom(ropts));

    // Reduced sweep through the cached engine == free-function sweep.
    const auto freqs = log_frequencies(1e-3, 1.0, 8);
    const std::vector<double> p{0.1, 0.1};
    expect_bit_identical(sweep_reduced(rom, p, freqs), study.sweep_rom(p, freqs));

    // Pole study on the shared context + cached engine == fresh run.
    MonteCarloOptions mc;
    mc.samples = 5;
    const auto samples = sample_parameters(2, mc);
    PoleOptions popts;
    popts.count = 3;
    const PoleErrorStudy fresh = pole_error_study(sys, rom, samples, popts);
    const PoleErrorStudy shared = study.pole_errors(samples, popts);
    ASSERT_EQ(shared.flattened.size(), fresh.flattened.size());
    for (std::size_t i = 0; i < shared.flattened.size(); ++i)
        EXPECT_EQ(shared.flattened[i], fresh.flattened[i]);
    EXPECT_EQ(shared.max_error, fresh.max_error);
    EXPECT_EQ(shared.mean_error, fresh.mean_error);
}

TEST(VariabilityStudy, RomBuildUsesContextG0SymbolicBitIdentically) {
    const circuit::ParametricSystem sys = test_system();
    mor::LowRankPmorOptions ropts;
    ropts.s_order = 3;
    ropts.param_order = 2;

    // The facade's build routes through the context's cached g0-pattern
    // symbolic; the result must be bitwise the model an uncached
    // lowrank_pmor produces (same min-degree ordering of g0's own pattern).
    const mor::ReducedModel reference = mor::lowrank_pmor(sys, ropts).model;
    VariabilityStudy study(sys);
    const mor::ReducedModel& built = study.rom(ropts);
    EXPECT_TRUE(built.g0.raw() == reference.g0.raw());
    EXPECT_TRUE(built.c0.raw() == reference.c0.raw());
    EXPECT_TRUE(built.b.raw() == reference.b.raw());
    EXPECT_TRUE(built.l.raw() == reference.l.raw());

    // The g0 analysis is cached on the context: asking again re-runs nothing.
    const long after_build = study.context().symbolic_analyses();
    (void)study.context().g0_symbolic();
    (void)study.context().g0_symbolic();
    EXPECT_EQ(study.context().symbolic_analyses(), after_build);
}

TEST(VariabilityStudy, RepeatedTransientStudiesReuseTrapezoidPencils) {
    const circuit::ParametricSystem sys = test_system();
    VariabilityStudy study(sys);
    EXPECT_EQ(study.trapezoid_cache().builds(), 0);

    TransientStudyOptions topts;
    topts.transient.t_stop = 10.0;
    topts.transient.dt = 0.5;
    const std::vector<std::vector<double>> corners{{0.0, 0.0}, {0.2, -0.1}};

    const TransientStudy first = study.transient(corners, topts);
    EXPECT_EQ(study.trapezoid_cache().builds(), 1);

    // Same dt again: the nominal pencil is NOT re-stamped/re-factored, and
    // the study is bitwise identical to the first (and to a fresh run).
    const TransientStudy second = study.transient(corners, topts);
    EXPECT_EQ(study.trapezoid_cache().builds(), 1);
    ASSERT_EQ(second.waveforms.size(), first.waveforms.size());
    for (std::size_t k = 0; k < corners.size(); ++k)
        expect_bit_identical(first.waveforms[k], second.waveforms[k]);
    EXPECT_EQ(first.level, second.level);
    EXPECT_EQ(first.mean_delay, second.mean_delay);

    const TransientStudy fresh = transient_study(sys, corners, topts);
    for (std::size_t k = 0; k < corners.size(); ++k)
        expect_bit_identical(fresh.waveforms[k], second.waveforms[k]);

    // A schedule that repeats the cached dt but adds a coarser tail builds
    // exactly ONE new pencil (per distinct dt, not per study or segment).
    TransientStudyOptions sched = topts;
    sched.transient.schedule = {{5.0, 0.5}, {10.0, 1.0}};
    (void)study.transient(corners, sched);
    EXPECT_EQ(study.trapezoid_cache().builds(), 2);
    (void)study.transient(corners, sched);
    EXPECT_EQ(study.trapezoid_cache().builds(), 2);
}

TEST(TrapezoidBatchCache, LruBoundEvictsLeastRecentlyUsedPencil) {
    const circuit::ParametricSystem sys = test_system();
    const solve::ParametricSolveContext ctx(sys);
    solve::TrapezoidBatchCache cache(ctx, 2);

    const auto a = cache.get(0.5);
    const auto b = cache.get(0.25);
    EXPECT_EQ(cache.builds(), 2);
    (void)cache.get(0.5);  // hit bumps 0.5 to most-recent
    EXPECT_EQ(cache.builds(), 2);

    (void)cache.get(0.125);  // past capacity: evicts 0.25 (the LRU entry)
    EXPECT_EQ(cache.builds(), 3);
    (void)cache.get(0.5);  // survived the eviction
    EXPECT_EQ(cache.builds(), 3);
    (void)cache.get(0.25);  // was evicted: rebuilt
    EXPECT_EQ(cache.builds(), 4);

    // Evicted pencils held by callers (runners mid-study) stay valid.
    EXPECT_EQ(a->dt(), 0.5);
    EXPECT_EQ(b->dt(), 0.25);

    EXPECT_THROW(solve::TrapezoidBatchCache(ctx, 0), Error);
}

TEST(VariabilityStudy, SetRomInstallsExternalModel) {
    const circuit::ParametricSystem sys = test_system();
    VariabilityStudy study(sys);

    mor::LowRankPmorOptions ropts;
    ropts.s_order = 2;
    ropts.param_order = 2;
    mor::ReducedModel external = mor::lowrank_pmor(sys, ropts).model;
    const int q = external.size();
    study.set_rom(std::move(external));
    ASSERT_TRUE(study.has_rom());
    EXPECT_EQ(study.rom().size(), q);
    EXPECT_EQ(study.rom_engine().size(), q);
}

}  // namespace
}  // namespace varmor::analysis
