// VariabilityStudy facade: studies sharing one solve context (and one cached
// ROM) must equal fresh free-function runs bitwise, and a sweep study plus a
// transient study on one facade must pay exactly ONE symbolic LU analysis.

#include <gtest/gtest.h>

#include "analysis/freq_sweep.h"
#include "analysis/monte_carlo.h"
#include "analysis/transient_batch.h"
#include "analysis/variability_study.h"
#include "circuit/mna.h"
#include "la/ops.h"
#include "mor/lowrank_pmor.h"
#include "mor_test_utils.h"

namespace varmor::analysis {
namespace {

using la::ZMatrix;

void expect_bit_identical(const std::vector<ZMatrix>& a, const std::vector<ZMatrix>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].rows(), b[i].rows());
        ASSERT_EQ(a[i].cols(), b[i].cols());
        for (std::size_t k = 0; k < a[i].raw().size(); ++k) {
            EXPECT_EQ(a[i].raw()[k].real(), b[i].raw()[k].real()) << "point " << i;
            EXPECT_EQ(a[i].raw()[k].imag(), b[i].raw()[k].imag()) << "point " << i;
        }
    }
}

void expect_bit_identical(const TransientResult& a, const TransientResult& b) {
    ASSERT_EQ(a.time.size(), b.time.size());
    for (std::size_t i = 0; i < a.time.size(); ++i) EXPECT_EQ(a.time[i], b.time[i]);
    ASSERT_EQ(a.ports.size(), b.ports.size());
    for (std::size_t k = 0; k < a.ports.size(); ++k) {
        ASSERT_EQ(a.ports[k].size(), b.ports[k].size());
        for (std::size_t i = 0; i < a.ports[k].size(); ++i)
            EXPECT_EQ(a.ports[k][i], b.ports[k][i]) << "port " << k << " step " << i;
    }
}

circuit::ParametricSystem test_system() {
    return varmor::testing::small_parametric_rc(30, 2, 77);
}

TEST(VariabilityStudy, SweepPlusTransientPayOneSymbolicAnalysis) {
    VariabilityStudy study(test_system());
    EXPECT_EQ(study.context().symbolic_analyses(), 0);

    const auto freqs = log_frequencies(1e-3, 1.0, 7);
    (void)study.sweep({0.1, -0.1}, freqs);
    EXPECT_EQ(study.context().symbolic_analyses(), 1);

    TransientStudyOptions topts;
    topts.transient.t_stop = 10.0;
    topts.transient.dt = 0.5;
    (void)study.transient({{0.0, 0.0}, {0.2, -0.1}}, topts);
    // The trapezoid pencils carry the same union(G, C) pattern as the sweep
    // pencil, so the transient study reuses the sweep's analysis.
    EXPECT_EQ(study.context().symbolic_analyses(), 1);

    // More studies, same analysis.
    (void)study.sweep({0.0, 0.0}, freqs);
    (void)study.transient({{0.1, 0.1}}, topts);
    EXPECT_EQ(study.context().symbolic_analyses(), 1);
}

TEST(VariabilityStudy, RepeatedStudiesOnOneContextMatchFreshRuns) {
    const circuit::ParametricSystem sys = test_system();
    VariabilityStudy study(sys);
    const auto freqs = log_frequencies(1e-3, 1.0, 9);
    const std::vector<double> p{0.15, -0.2};

    // Two sweeps on the shared context == two fresh one-shot runs.
    const auto fresh = sweep_full(sys, p, freqs);
    expect_bit_identical(fresh, study.sweep(p, freqs));
    expect_bit_identical(fresh, study.sweep(p, freqs));

    // Transient study after the sweeps (warm context) == a fresh study.
    TransientStudyOptions topts;
    topts.transient.t_stop = 12.0;
    topts.transient.dt = 0.25;
    const std::vector<std::vector<double>> corners{{0.0, 0.0}, {0.2, -0.1}, {-0.3, 0.3}};
    const TransientStudy fresh_study = transient_study(sys, corners, topts);
    const TransientStudy shared_study = study.transient(corners, topts);
    ASSERT_EQ(shared_study.waveforms.size(), fresh_study.waveforms.size());
    for (std::size_t k = 0; k < corners.size(); ++k)
        expect_bit_identical(fresh_study.waveforms[k], shared_study.waveforms[k]);
    EXPECT_EQ(shared_study.level, fresh_study.level);
    EXPECT_EQ(shared_study.mean_delay, fresh_study.mean_delay);
    EXPECT_EQ(shared_study.sigma_delay, fresh_study.sigma_delay);
}

TEST(VariabilityStudy, CachedRomSharedAcrossStudies) {
    const circuit::ParametricSystem sys = test_system();
    VariabilityStudy study(sys);
    EXPECT_FALSE(study.has_rom());
    EXPECT_THROW(study.rom_engine(), Error);

    mor::LowRankPmorOptions ropts;
    ropts.s_order = 3;
    ropts.param_order = 2;
    const mor::ReducedModel& rom = study.rom(ropts);
    EXPECT_TRUE(study.has_rom());
    // Second call returns the SAME cached model (no rebuild).
    EXPECT_EQ(&rom, &study.rom(ropts));

    // Reduced sweep through the cached engine == free-function sweep.
    const auto freqs = log_frequencies(1e-3, 1.0, 8);
    const std::vector<double> p{0.1, 0.1};
    expect_bit_identical(sweep_reduced(rom, p, freqs), study.sweep_rom(p, freqs));

    // Pole study on the shared context + cached engine == fresh run.
    MonteCarloOptions mc;
    mc.samples = 5;
    const auto samples = sample_parameters(2, mc);
    PoleOptions popts;
    popts.count = 3;
    const PoleErrorStudy fresh = pole_error_study(sys, rom, samples, popts);
    const PoleErrorStudy shared = study.pole_errors(samples, popts);
    ASSERT_EQ(shared.flattened.size(), fresh.flattened.size());
    for (std::size_t i = 0; i < shared.flattened.size(); ++i)
        EXPECT_EQ(shared.flattened[i], fresh.flattened[i]);
    EXPECT_EQ(shared.max_error, fresh.max_error);
    EXPECT_EQ(shared.mean_error, fresh.mean_error);
}

TEST(VariabilityStudy, SetRomInstallsExternalModel) {
    const circuit::ParametricSystem sys = test_system();
    VariabilityStudy study(sys);

    mor::LowRankPmorOptions ropts;
    ropts.s_order = 2;
    ropts.param_order = 2;
    mor::ReducedModel external = mor::lowrank_pmor(sys, ropts).model;
    const int q = external.size();
    study.set_rom(std::move(external));
    ASSERT_TRUE(study.has_rom());
    EXPECT_EQ(study.rom().size(), q);
    EXPECT_EQ(study.rom_engine().size(), q);
}

}  // namespace
}  // namespace varmor::analysis
