#include <gtest/gtest.h>

#include "la/eig_sym.h"
#include "la/orth.h"
#include "test_helpers.h"

namespace varmor::la {
namespace {

using testing::expect_near;
using testing::random_matrix;
using testing::random_spd_matrix;

TEST(EigSym, DiagonalMatrix) {
    Matrix a{{3.0, 0.0}, {0.0, -1.0}};
    SymEigResult e = eig_symmetric(a);
    EXPECT_NEAR(e.values[0], -1.0, 1e-13);
    EXPECT_NEAR(e.values[1], 3.0, 1e-13);
}

TEST(EigSym, HandComputed2x2) {
    // [[2,1],[1,2]] has eigenvalues 1 and 3.
    Matrix a{{2.0, 1.0}, {1.0, 2.0}};
    SymEigResult e = eig_symmetric(a);
    EXPECT_NEAR(e.values[0], 1.0, 1e-13);
    EXPECT_NEAR(e.values[1], 3.0, 1e-13);
}

TEST(EigSym, EigenEquationHolds) {
    util::Rng rng(1);
    Matrix a = symmetric_part(random_matrix(12, 12, rng));
    SymEigResult e = eig_symmetric(a);
    for (int j = 0; j < 12; ++j) {
        Vector v = e.vectors.col(j);
        Vector r = matvec(a, v) - e.values[static_cast<std::size_t>(j)] * v;
        EXPECT_LE(norm2(r), 1e-10 * (1 + std::abs(e.values[static_cast<std::size_t>(j)])));
    }
}

TEST(EigSym, VectorsOrthonormal) {
    util::Rng rng(2);
    Matrix a = symmetric_part(random_matrix(10, 10, rng));
    SymEigResult e = eig_symmetric(a);
    EXPECT_LE(orthonormality_error(e.vectors), 1e-11);
}

TEST(EigSym, TraceEqualsSum) {
    util::Rng rng(3);
    Matrix a = symmetric_part(random_matrix(15, 15, rng));
    SymEigResult e = eig_symmetric(a);
    double trace = 0, sum = 0;
    for (int i = 0; i < 15; ++i) trace += a(i, i);
    for (double v : e.values) sum += v;
    EXPECT_NEAR(trace, sum, 1e-10);
}

TEST(EigSymGeneralized, ReducesToStandardWhenBIsIdentity) {
    util::Rng rng(4);
    Matrix a = symmetric_part(random_matrix(8, 8, rng));
    SymEigResult std_e = eig_symmetric(a);
    SymEigResult gen_e = eig_symmetric_generalized(a, Matrix::identity(8));
    for (std::size_t i = 0; i < std_e.values.size(); ++i)
        EXPECT_NEAR(std_e.values[i], gen_e.values[i], 1e-10);
}

TEST(EigSymGeneralized, SatisfiesGeneralizedEquation) {
    util::Rng rng(5);
    Matrix a = symmetric_part(random_matrix(9, 9, rng));
    Matrix b = random_spd_matrix(9, rng);
    SymEigResult e = eig_symmetric_generalized(a, b);
    for (int j = 0; j < 9; ++j) {
        Vector v = e.vectors.col(j);
        Vector r = matvec(a, v) - e.values[static_cast<std::size_t>(j)] * matvec(b, v);
        EXPECT_LE(norm2(r), 1e-9 * (1 + std::abs(e.values[static_cast<std::size_t>(j)])) *
                                (1 + norm_fro(b)));
    }
}

TEST(EigSymGeneralized, VectorsAreBOrthonormal) {
    util::Rng rng(6);
    Matrix a = symmetric_part(random_matrix(7, 7, rng));
    Matrix b = random_spd_matrix(7, rng);
    SymEigResult e = eig_symmetric_generalized(a, b);
    Matrix gram = matmul_transA(e.vectors, matmul(b, e.vectors));
    expect_near(gram, Matrix::identity(7), 1e-9);
}

class EigSymProperty : public ::testing::TestWithParam<int> {};

TEST_P(EigSymProperty, SpdHasPositiveSpectrum) {
    const int n = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(n) * 13);
    Matrix a = random_spd_matrix(n, rng);
    SymEigResult e = eig_symmetric(a);
    for (double v : e.values) EXPECT_GT(v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSymProperty, ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace varmor::la
