#pragma once

#include "circuit/mna.h"
#include "circuit/netlist.h"
#include "la/ops.h"
#include "mor/moments.h"
#include "mor/reduced_model.h"
#include "util/rng.h"

namespace varmor::testing {

/// Small random parametric RC tree for moment-matching tests: every element
/// carries random sensitivities to every parameter. Node/parameter counts
/// stay small so the dense moment oracle is exact and fast.
inline circuit::ParametricSystem small_parametric_rc(int nodes, int num_params,
                                                     std::uint64_t seed, int ports = 2) {
    util::Rng rng(seed);
    circuit::Netlist net(num_params);
    net.ensure_nodes(nodes);
    auto sens = [&](double value) {
        std::vector<double> d(static_cast<std::size_t>(num_params));
        for (double& x : d) x = 0.3 * value * rng.uniform(-1.0, 1.0);
        return d;
    };
    // Driver resistance grounds the tree: G0 must be nonsingular (a floating
    // resistive network has a singular Laplacian G and no DC operating point).
    net.add_resistor(1, 0, 1.0);
    for (int k = 2; k <= nodes; ++k) {
        const int parent = 1 + rng.below(k - 1);
        const double r = rng.uniform(0.5, 2.0);
        const double c = rng.uniform(0.5, 2.0);  // O(1) values: benign moment scales
        net.add_resistor(parent, k, r, sens(1.0 / r));
        net.add_capacitor(k, 0, c, sens(c));
    }
    net.add_capacitor(1, 0, 1.0, sens(1.0));
    net.add_port(1);
    if (ports >= 2) net.add_port(nodes);
    return assemble_mna(net);
}

/// Dense copies of a parametric system's matrices (oracle input).
struct DenseSystem {
    la::Matrix g0, c0;
    std::vector<la::Matrix> dg, dc;
    la::Matrix b, l;
};

inline DenseSystem to_dense(const circuit::ParametricSystem& sys) {
    DenseSystem d;
    d.g0 = sys.g0.to_dense();
    d.c0 = sys.c0.to_dense();
    for (const auto& m : sys.dg) d.dg.push_back(m.to_dense());
    for (const auto& m : sys.dc) d.dc.push_back(m.to_dense());
    d.b = sys.b;
    d.l = sys.l;
    return d;
}

inline mor::MomentOracle oracle_of(const DenseSystem& d) {
    return mor::MomentOracle(d.g0, d.c0, d.dg, d.dc, d.b, d.l);
}

inline mor::MomentOracle oracle_of(const circuit::ParametricSystem& sys) {
    return oracle_of(to_dense(sys));
}

inline mor::MomentOracle oracle_of(const mor::ReducedModel& m) {
    return mor::MomentOracle(m.g0, m.c0, m.dg, m.dc, m.b, m.l);
}

/// Max relative port-moment mismatch between two oracles over all
/// multidegrees of total order <= `order`.
inline double max_moment_mismatch(mor::MomentOracle& full, mor::MomentOracle& reduced,
                                  int order, int num_params) {
    double worst = 0.0;
    for (const mor::MomentKey& key : mor::MomentOracle::keys_up_to(order, num_params)) {
        const la::Matrix mf = full.port_moment(key);
        const la::Matrix mr = reduced.port_moment(key);
        const double scale = la::norm_max(mf) + 1e-300;
        worst = std::max(worst, la::norm_max(mf - mr) / scale);
    }
    return worst;
}

}  // namespace varmor::testing
