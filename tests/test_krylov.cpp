#include <gtest/gtest.h>

#include "la/lu_dense.h"
#include "la/orth.h"
#include "mor/krylov.h"
#include "test_helpers.h"

namespace varmor::mor {
namespace {

using la::Matrix;
using la::Vector;
using varmor::testing::random_matrix;

TEST(BlockArnoldi, SpansExplicitKrylovSpace) {
    util::Rng rng(1);
    const int n = 20;
    Matrix a = random_matrix(n, n, rng);
    for (double& x : a.raw()) x *= 0.3;
    Matrix x0 = random_matrix(n, 2, rng);
    auto apply = [&](const Vector& v) { return la::matvec(a, v); };

    const int blocks = 4;
    Matrix v = block_arnoldi(apply, x0, blocks);
    EXPECT_LE(la::orthonormality_error(v), 1e-10);

    // Explicit Krylov vectors must lie in span(V).
    Matrix power = x0;
    for (int j = 0; j < blocks; ++j) {
        for (int c = 0; c < power.cols(); ++c) {
            Vector w = power.col(c);
            Vector proj = la::matvec(v, la::matvec_transpose(v, w));
            EXPECT_LE(la::norm2(w - proj), 1e-8 * (1 + la::norm2(w)))
                << "block " << j << " col " << c;
        }
        power = la::matmul(a, power);
    }
}

TEST(BlockArnoldi, ColumnsBoundedByBlocksTimesWidth) {
    util::Rng rng(2);
    const int n = 30;
    Matrix a = random_matrix(n, n, rng);
    Matrix x0 = random_matrix(n, 3, rng);
    auto apply = [&](const Vector& v) { return la::matvec(a, v); };
    Matrix v = block_arnoldi(apply, x0, 5);
    EXPECT_LE(v.cols(), 15);
    EXPECT_GE(v.cols(), 3);
}

TEST(BlockArnoldi, TerminatesOnInvariantSubspace) {
    // Projector onto first 3 coordinates: Krylov space saturates at dim 3.
    const int n = 10;
    Matrix a(n, n);
    for (int i = 0; i < 3; ++i) a(i, i) = 1.0;
    Matrix x0(n, 1);
    x0(0, 0) = 1.0;
    x0(1, 0) = 0.5;
    x0(2, 0) = 0.25;
    auto apply = [&](const Vector& v) { return la::matvec(a, v); };
    Matrix v = block_arnoldi(apply, x0, 8);
    EXPECT_LE(v.cols(), 3);
}

TEST(BlockArnoldi, ExtendAccumulatesSubspaces) {
    util::Rng rng(3);
    const int n = 25;
    Matrix a = random_matrix(n, n, rng);
    auto apply = [&](const Vector& v) { return la::matvec(a, v); };
    Matrix x1 = random_matrix(n, 1, rng);
    Matrix x2 = random_matrix(n, 1, rng);
    Matrix v1 = block_arnoldi(apply, x1, 3);
    Matrix v12 = block_arnoldi_extend(v1, apply, x2, 3);
    EXPECT_GE(v12.cols(), v1.cols());
    EXPECT_LE(la::orthonormality_error(v12), 1e-10);
    // First columns unchanged.
    for (int j = 0; j < v1.cols(); ++j)
        for (int i = 0; i < n; ++i) EXPECT_EQ(v12(i, j), v1(i, j));
}

TEST(BlockArnoldi, InvalidArgumentsThrow) {
    Matrix x0(5, 1);
    x0(0, 0) = 1.0;
    auto apply = [](const Vector& v) { return v; };
    EXPECT_THROW(block_arnoldi(apply, x0, 0), Error);
    EXPECT_THROW(block_arnoldi(apply, Matrix(5, 0), 2), Error);
    EXPECT_THROW(block_arnoldi(nullptr, x0, 2), Error);
}

}  // namespace
}  // namespace varmor::mor
