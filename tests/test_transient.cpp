#include <cmath>
#include <gtest/gtest.h>

#include "analysis/transient.h"
#include "circuit/mna.h"
#include "mor/lowrank_pmor.h"
#include "mor_test_utils.h"

namespace varmor::analysis {
namespace {

/// One-node RC with known step response v(t) = R*(1 - exp(-t/RC)).
circuit::ParametricSystem single_rc(double r, double c) {
    circuit::Netlist net;
    const int a = net.add_node();
    net.add_resistor(a, 0, r);
    net.add_capacitor(a, 0, c);
    net.add_port(a);
    return assemble_mna(net);
}

TEST(Transient, SingleRcStepResponseAnalytic) {
    const double r = 100.0, c = 1e-12;  // tau = 100 ps
    circuit::ParametricSystem sys = single_rc(r, c);
    TransientOptions opts;
    opts.t_stop = 1e-9;
    opts.dt = 1e-12;
    TransientResult result = simulate(sys, {}, step_input(1, 0), opts);
    ASSERT_EQ(result.ports.size(), 1u);
    for (std::size_t i = 0; i < result.time.size(); i += 100) {
        const double t = result.time[i];
        const double expected = r * (1.0 - std::exp(-t / (r * c)));
        EXPECT_NEAR(result.ports[0][i], expected, 2e-3 * r) << "t = " << t;
    }
}

TEST(Transient, TrapezoidalSecondOrderConvergence) {
    const double r = 100.0, c = 1e-12;
    circuit::ParametricSystem sys = single_rc(r, c);
    const double t_eval = 2e-10;
    const double exact = r * (1.0 - std::exp(-t_eval / (r * c)));

    auto error_at = [&](double dt) {
        TransientOptions opts;
        opts.t_stop = t_eval + dt / 2;
        opts.dt = dt;
        TransientResult res = simulate(sys, {}, step_input(1, 0), opts);
        const std::size_t idx = static_cast<std::size_t>(std::round(t_eval / dt));
        return std::abs(res.ports[0][idx] - exact);
    };
    const double e1 = error_at(4e-12);
    const double e2 = error_at(2e-12);
    const double e3 = error_at(1e-12);
    // Halving the step must shrink error ~4x (second order).
    EXPECT_LT(e2, e1 / 2.5);
    EXPECT_LT(e3, e2 / 2.5);
}

TEST(Transient, ReducedModelMatchesFullWaveform) {
    circuit::ParametricSystem sys = varmor::testing::small_parametric_rc(40, 2, 71);
    mor::LowRankPmorOptions mopts;
    mopts.s_order = 5;
    mopts.param_order = 3;
    mopts.rank = 2;
    mor::LowRankPmorResult rom = mor::lowrank_pmor(sys, mopts);

    const std::vector<double> p{0.5, -0.5};
    TransientOptions topts;
    topts.t_stop = 30.0;  // element values are O(1): tau is O(1)
    topts.dt = 0.02;
    TransientResult full = simulate(sys, p, step_input(2, 0), topts);
    TransientResult red = simulate(rom.model, p, step_input(2, 0), topts);

    double worst = 0, scale = 0;
    for (std::size_t i = 0; i < full.time.size(); ++i) {
        worst = std::max(worst, std::abs(full.ports[1][i] - red.ports[1][i]));
        scale = std::max(scale, std::abs(full.ports[1][i]));
    }
    EXPECT_LT(worst, 2e-3 * scale);
}

TEST(Transient, DelayShiftsWithParameters) {
    // Deterministic RC line with monotone sensitivities: p0 scales the wire
    // conductance (g(p) = g (1 + 0.4 p0)), p1 scales the capacitance. The
    // resistance-up capacitance-up corner must increase the 50% crossing
    // time of the far-end step response.
    circuit::Netlist net(2);
    const int n = 30;
    net.ensure_nodes(n);
    net.add_resistor(1, 0, 1.0);
    for (int k = 2; k <= n; ++k) {
        const double r = 1.0, c = 1.0;
        net.add_resistor(k - 1, k, r, {0.4 / r, 0.0});
        net.add_capacitor(k, 0, c, {0.0, 0.4 * c});
    }
    net.add_port(1);
    net.add_port(n);
    circuit::ParametricSystem sys = assemble_mna(net);

    TransientOptions topts;
    topts.t_stop = 2000.0;  // tau ~ n^2 RC/2 ~ 450
    topts.dt = 0.5;
    TransientResult nominal = simulate(sys, {0.0, 0.0}, step_input(2, 0), topts);
    TransientResult slow = simulate(sys, {-0.9, 0.9}, step_input(2, 0), topts);
    const double level = 0.5 * nominal.ports[1].back();
    const auto d_nom = crossing_time(nominal, 1, level);
    const auto d_slow = crossing_time(slow, 1, level);
    ASSERT_TRUE(d_nom.has_value());
    ASSERT_TRUE(d_slow.has_value());
    EXPECT_GT(*d_nom, 0.0);
    EXPECT_GT(*d_slow, 1.3 * *d_nom);
}

TEST(Transient, CrossingTimeInterpolatesAndHandlesMiss) {
    TransientResult r;
    r.time = {0.0, 1.0, 2.0};
    r.ports = {{0.0, 1.0, 1.5}};
    const auto hit = crossing_time(r, 0, 0.5);
    ASSERT_TRUE(hit.has_value());
    EXPECT_NEAR(*hit, 0.5, 1e-12);
    // No crossing is distinguishable from any real time: nullopt, not a
    // sentinel that could collide with a pre-window crossing.
    EXPECT_FALSE(crossing_time(r, 0, 5.0).has_value());
    EXPECT_THROW(crossing_time(r, 2, 0.5), Error);
}

TEST(Transient, InvalidGridThrows) {
    circuit::ParametricSystem sys = single_rc(1.0, 1.0);
    TransientOptions bad;
    bad.dt = 0.0;
    EXPECT_THROW(simulate(sys, {}, step_input(1, 0), bad), Error);
    bad.dt = 2.0;
    bad.t_stop = 1.0;
    EXPECT_THROW(simulate(sys, {}, step_input(1, 0), bad), Error);
    bad.t_stop = 0.0;
    EXPECT_THROW(simulate(sys, {}, step_input(1, 0), bad), Error);
    bad.t_stop = 1.0;
    bad.dt = 1e-10;  // 1e10 steps would wrap a 32-bit step counter
    EXPECT_THROW(simulate(sys, {}, step_input(1, 0), bad), Error);
}

TEST(Transient, StepCountRoundsUnderFpError) {
    // 0.3 / 0.1 = 2.9999999999999996 in doubles: the seed implementation's
    // static_cast<int> truncated to 2 steps and silently dropped the final
    // time point. The grid must round to the nearest step count.
    circuit::ParametricSystem sys = single_rc(1.0, 1.0);
    TransientOptions opts;
    opts.t_stop = 0.3;
    opts.dt = 0.1;
    TransientResult res = simulate(sys, {}, step_input(1, 0), opts);
    ASSERT_EQ(res.time.size(), 4u);  // t = 0 plus 3 steps
    EXPECT_NEAR(res.time.back(), 0.3, 1e-12);

    // The t_stop = 1e-9, dt = 1e-11 grid of the delay experiments: exactly
    // 100 steps, final point at t_stop.
    opts.t_stop = 1e-9;
    opts.dt = 1e-11;
    res = simulate(sys, {}, step_input(1, 0), opts);
    ASSERT_EQ(res.time.size(), 101u);
    EXPECT_NEAR(res.time.back(), 1e-9, 1e-20);
}

TEST(Transient, SingleStepRunIsLegal) {
    // t_stop == dt is a valid one-step grid (the seed required t_stop > dt).
    circuit::ParametricSystem sys = single_rc(1.0, 1.0);
    TransientOptions opts;
    opts.t_stop = 0.5;
    opts.dt = 0.5;
    TransientResult res = simulate(sys, {}, step_input(1, 0), opts);
    ASSERT_EQ(res.time.size(), 2u);
    EXPECT_DOUBLE_EQ(res.time.back(), 0.5);
}

}  // namespace
}  // namespace varmor::analysis
