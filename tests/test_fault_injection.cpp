// The fault-tolerance layer, driven through the util::FaultInjector hook
// points. The three serving invariants pinned here:
//
//   1. No future is ever left unfulfilled — every accepted query resolves to
//      a value or an exception, no matter which fault fires.
//   2. Non-faulted queries are bitwise identical to serve-alone: a fault in
//      one query of a coalesced batch never perturbs (or re-runs) the rest.
//   3. The service keeps accepting and answering work after ANY injected
//      fault — faults are contained, never wedging.
//
// Plus the failure taxonomy (OverloadError / DeadlineExceeded /
// ServiceClosed as failed futures, never throws into the producer) and the
// ModelCache poison / degraded-session / healing cycle.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "mor/lowrank_pmor.h"
#include "mor_test_utils.h"
#include "obs/export.h"
#include "service/study_service.h"
#include "util/constants.h"
#include "util/fault_injection.h"

namespace varmor::service {
namespace {

using la::cplx;
using la::ZMatrix;
using util::FaultInjected;
using util::FaultInjector;
using util::ScopedFault;
using varmor::testing::small_parametric_rc;

circuit::ParametricSystem test_system() { return small_parametric_rc(30, 2, 91); }

StudyServiceOptions service_options() {
    StudyServiceOptions opts;
    opts.reduction.s_order = 3;
    opts.reduction.param_order = 2;
    opts.transient.transient.t_stop = 10.0;
    opts.transient.transient.dt = 0.5;
    opts.batcher.max_batch = 24;
    opts.batcher.max_wait_ms = 5.0;
    opts.batcher.threads = 1;
    return opts;
}

std::string fresh_disk_dir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/// Cache options tuned for fault tests: one failure poisons, poison heals
/// fast, retries are quick.
ModelCacheOptions fault_cache_options(const std::string& disk_dir) {
    ModelCacheOptions copts;
    copts.disk_dir = disk_dir;
    copts.poison_after = 1;
    copts.poison_ttl_ms = 50.0;
    copts.retry.backoff_ms = 0.1;
    return copts;
}

/// Invariant 1 helper: the ticket must RESOLVE (either way) promptly.
/// Generic over the handle (service::Future tickets and std::future alike —
/// both expose the same wait_for surface).
template <class FutureT>
::testing::AssertionResult resolves(FutureT& f) {
    if (f.wait_for(std::chrono::seconds(30)) == std::future_status::ready)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << "future left unfulfilled";
}

/// get() that reports value-vs-error without throwing out of the test body.
template <class FutureT>
bool got_value(FutureT&& f) {
    try {
        (void)f.get();
        return true;
    } catch (const std::exception&) {
        return false;
    }
}

void expect_bit_identical(const ZMatrix& a, const ZMatrix& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t k = 0; k < a.raw().size(); ++k) {
        EXPECT_EQ(a.raw()[k].real(), b.raw()[k].real());
        EXPECT_EQ(a.raw()[k].imag(), b.raw()[k].imag());
    }
}

TEST(FaultInjection, InjectorArmsFiresCountsAndDisarms) {
    FaultInjector::instance().clear();
    auto hit = [] { VARMOR_FAULT_POINT_DETAIL("test.point", "d0"); };

    // Nothing armed: the point is inert (and costs one relaxed load).
    EXPECT_FALSE(FaultInjector::armed());
    hit();
    EXPECT_EQ(FaultInjector::instance().hits("test.point"), 0);

    {
        ScopedFault fault("test.point", FaultInjector::fail("injected"));
        EXPECT_TRUE(FaultInjector::armed());
        EXPECT_THROW(hit(), FaultInjected);
        EXPECT_THROW(hit(), FaultInjected);
        EXPECT_EQ(FaultInjector::instance().hits("test.point"), 2);
    }
    // Scope ended: disarmed again.
    EXPECT_FALSE(FaultInjector::armed());
    hit();
    EXPECT_EQ(FaultInjector::instance().hits("test.point"), 2);

    // fail_first passes once exhausted; fail_detail targets one call site.
    {
        ScopedFault fault("test.point", FaultInjector::fail_first(2, "transient"));
        EXPECT_THROW(hit(), FaultInjected);
        EXPECT_THROW(hit(), FaultInjected);
        hit();  // third hit passes
    }
    {
        ScopedFault fault("test.point", FaultInjector::fail_detail("d0", "targeted"));
        EXPECT_THROW(hit(), FaultInjected);
        VARMOR_FAULT_POINT_DETAIL("test.point", "other");  // different detail passes
    }
    FaultInjector::instance().clear();
}

// ---------------------------------------------------------------------------
// The every-fault-point driver: for each named point in the serving stack,
// arm an unconditional failure, push a mixed workload through a cold
// service, and assert the three invariants. (model_cache.reload_verify needs
// a warm disk artifact and has its own test below.)
// ---------------------------------------------------------------------------

TEST(FaultInjection, EveryFaultPointIsSurvivable) {
    const circuit::ParametricSystem sys = test_system();
    const std::vector<std::vector<double>> corners{
        {0.0, 0.0}, {0.1, -0.05}, {-0.08, 0.12}};
    const cplx s(0.0, util::two_pi_f(0.05));

    const std::vector<std::string> points{
        "model_cache.disk_read",    "model_cache.disk_write",
        "model_cache.rename",       "model_cache.build",
        "query_batcher.stamp",      "query_batcher.flush",
        "study_session.construct",  "transient.corner",
        "trapezoid_cache.build",
    };

    for (const std::string& point : points) {
        SCOPED_TRACE(point);
        FaultInjector::instance().clear();
        ModelCache cache(fault_cache_options(
            fresh_disk_dir("varmor_fault_" + point)));
        StudyService service(cache, service_options());

        {
            ScopedFault fault(point, FaultInjector::fail("injected: " + point));
            StudySession* session = nullptr;
            try {
                session = &service.open(sys);
            } catch (const std::exception&) {
                // Construction-path faults surface here; the service itself
                // must still be usable (asserted below, faults cleared).
            }
            if (session) {
                // Invariant 1: whatever the fault does, every future
                // resolves — value or exception, never a hang.
                std::vector<Future<ZMatrix>> tf;
                std::vector<Future<DelayResult>> df;
                std::vector<Future<std::vector<cplx>>> pf;
                for (const auto& p : corners) {
                    tf.push_back(session->transfer(p, s));
                    df.push_back(session->delay(p));
                    pf.push_back(session->poles(p));
                }
                session->flush();
                for (auto& f : tf) EXPECT_TRUE(resolves(f));
                for (auto& f : df) EXPECT_TRUE(resolves(f));
                for (auto& f : pf) EXPECT_TRUE(resolves(f));
                for (auto& f : tf) (void)got_value(std::move(f));
                for (auto& f : df) (void)got_value(std::move(f));
                for (auto& f : pf) (void)got_value(std::move(f));
            }
            // The point must actually have been exercised by this scenario —
            // read through the unified snapshot (the injector's hit counts
            // surface as fault.* counters), not the injector's internals.
            EXPECT_GT(obs::process_snapshot().counter("fault." + point), 0)
                << "fault point never fired — the scenario does not cover it";
        }

        // Invariant 3: fault cleared, the SAME service accepts and answers.
        // (A degraded session may need its key's poison to expire first.)
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
        StudySession& healed = service.open(sys);
        EXPECT_FALSE(healed.degraded());
        for (const auto& p : corners) {
            auto tfut = healed.transfer(p, s);
            auto dfut = healed.delay(p);
            ASSERT_TRUE(resolves(tfut));
            ASSERT_TRUE(resolves(dfut));
            // Invariant 2 (post-fault): batched answers are bitwise the
            // serve-alone reference.
            expect_bit_identical(tfut.get(), healed.transfer_now(p, s));
            const DelayResult d = dfut.get();
            const DelayResult ref = healed.delay_now(p);
            EXPECT_EQ(d.delay.has_value(), ref.delay.has_value());
            if (d.delay) EXPECT_EQ(*d.delay, *ref.delay);
        }
    }
    FaultInjector::instance().clear();
}

TEST(FaultInjection, ReloadVerifyFaultFallsBackToRebuild) {
    const circuit::ParametricSystem sys = test_system();
    FaultInjector::instance().clear();
    const std::string dir = fresh_disk_dir("varmor_fault_reload_verify");

    ModelCache cache(fault_cache_options(dir));
    StudyService warm(cache, service_options());
    (void)warm.open(sys);
    ASSERT_EQ(cache.stats().builds, 1);

    // Cold memory, warm disk: the reload path runs — and its verify fault
    // turns the artifact into a miss, repaired by rebuild, not a crash.
    cache.evict_memory();
    {
        ScopedFault fault("model_cache.reload_verify",
                          FaultInjector::fail("verify blew up"));
        StudyService service(cache, service_options());
        StudySession& session = service.open(sys);
        EXPECT_FALSE(session.degraded());
        EXPECT_GT(obs::process_snapshot().counter("fault.model_cache.reload_verify"),
                  0);
        EXPECT_EQ(cache.stats().builds, 2);  // rebuilt, not served corrupt
    }
    FaultInjector::instance().clear();
}

// ---------------------------------------------------------------------------
// Invariant 2 in the presence of an ACTIVE fault: target exactly one corner
// of a coalesced batch; its batchmates' answers must be bitwise serve-alone,
// produced by the same batch (no re-runs).
// ---------------------------------------------------------------------------

TEST(FaultInjection, DelayCornerFaultIsolatesOneQueryWithoutRerun) {
    const circuit::ParametricSystem sys = test_system();
    FaultInjector::instance().clear();
    ModelCache cache;
    StudyService service(cache, service_options());
    StudySession& session = service.open(sys);

    const std::vector<std::vector<double>> corners{
        {0.11, 0.0}, {0.22, -0.05}, {0.33, 0.12}, {0.44, -0.02}};
    const std::size_t bad = 1;

    // Serve-alone references, computed before the fault is armed.
    std::vector<DelayResult> ref;
    for (const auto& p : corners) ref.push_back(session.delay_now(p));

    const long long hits_before =
        obs::process_snapshot().counter("fault.transient.corner");
    {
        ScopedFault fault("transient.corner",
                          FaultInjector::fail_detail(
                              std::to_string(corners[bad][0]), "bad corner"));
        std::vector<Future<DelayResult>> futures;
        for (const auto& p : corners) futures.push_back(session.delay(p));
        session.flush();

        for (std::size_t i = 0; i < corners.size(); ++i) {
            ASSERT_TRUE(resolves(futures[i]));
            if (i == bad) {
                EXPECT_THROW(futures[i].get(), FaultInjected);
            } else {
                const DelayResult d = futures[i].get();
                EXPECT_EQ(d.delay.has_value(), ref[i].delay.has_value());
                if (d.delay) EXPECT_EQ(*d.delay, *ref[i].delay);
            }
        }
        // No serve-alone re-runs: each corner reached the engine exactly
        // once (the old fallback re-ran every healthy corner individually,
        // which would double these hits).
        EXPECT_EQ(obs::process_snapshot().counter("fault.transient.corner") -
                      hits_before,
                  static_cast<long long>(corners.size()));
    }
    FaultInjector::instance().clear();
}

TEST(FaultInjection, StampFaultFailsOnePointGroupOnly) {
    const circuit::ParametricSystem sys = test_system();
    FaultInjector::instance().clear();
    ModelCache cache;
    StudyService service(cache, service_options());
    StudySession& session = service.open(sys);

    const std::vector<double> good{0.07, -0.03}, bad{0.21, 0.04};
    const cplx s(0.0, util::two_pi_f(0.05));
    const ZMatrix ref = session.transfer_now(good, s);

    {
        ScopedFault fault("query_batcher.stamp",
                          FaultInjector::fail_detail(std::to_string(bad[0]),
                                                     "bad stamp"));
        auto fg1 = session.transfer(good, s);
        auto fb = session.transfer(bad, s);
        auto fg2 = session.transfer(good, s);
        session.flush();
        ASSERT_TRUE(resolves(fg1));
        ASSERT_TRUE(resolves(fb));
        ASSERT_TRUE(resolves(fg2));
        expect_bit_identical(fg1.get(), ref);
        expect_bit_identical(fg2.get(), ref);
        EXPECT_THROW(fb.get(), FaultInjected);
    }
    FaultInjector::instance().clear();
}

// ---------------------------------------------------------------------------
// The failure taxonomy: overload, deadlines, closed — always failed futures.
// ---------------------------------------------------------------------------

TEST(FaultInjection, OverloadShedsWithFailedFutureNeverThrow) {
    const circuit::ParametricSystem sys = test_system();
    FaultInjector::instance().clear();
    ModelCache cache;
    StudyServiceOptions opts = service_options();
    opts.batcher.max_pending = 1;
    opts.batcher.max_batch = 1;
    opts.batcher.max_wait_ms = 0.0;
    StudyService service(cache, opts);
    StudySession& session = service.open(sys);

    // Hold the flusher inside a batch so the bounded queue actually fills.
    ScopedFault slow("query_batcher.flush", FaultInjector::sleep_for(60.0));
    const cplx s(0.0, 1.0);
    std::vector<Future<ZMatrix>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(session.transfer({0.01 * i, 0.0}, s));  // must not throw

    int ok = 0, shed = 0, other = 0;
    for (auto& f : futures) {
        ASSERT_TRUE(resolves(f));
        try {
            (void)f.get();
            ++ok;
        } catch (const OverloadError&) {
            ++shed;
        } catch (const std::exception&) {
            ++other;
        }
    }
    EXPECT_GT(ok, 0) << "admitted queries must still be served";
    EXPECT_GT(shed, 0) << "a 1-deep queue under a held flusher must shed";
    EXPECT_EQ(other, 0);
    EXPECT_EQ(session.batcher().stats().shed, shed);
    FaultInjector::instance().clear();
}

TEST(FaultInjection, ExpiredDeadlineCompletesWithDeadlineExceeded) {
    const circuit::ParametricSystem sys = test_system();
    FaultInjector::instance().clear();
    ModelCache cache;
    StudyServiceOptions opts = service_options();
    opts.batcher.max_batch = 1;
    opts.batcher.max_wait_ms = 0.0;
    StudyService service(cache, opts);
    StudySession& session = service.open(sys);
    const cplx s(0.0, 1.0);

    // Already expired at submission: failed immediately, never enqueued.
    auto pre = session.transfer({0.0, 0.0}, s, util::Deadline::after_ms(-1.0));
    ASSERT_TRUE(resolves(pre));
    EXPECT_THROW(pre.get(), DeadlineExceeded);

    // Expires while queued behind a held flusher: completed at collection.
    {
        ScopedFault slow("query_batcher.flush", FaultInjector::sleep_for(80.0));
        auto first = session.transfer({0.0, 0.0}, s);  // occupies the flusher
        auto doomed =
            session.transfer({0.1, 0.0}, s, util::Deadline::after_ms(5.0));
        ASSERT_TRUE(resolves(first));
        ASSERT_TRUE(resolves(doomed));
        EXPECT_TRUE(got_value(std::move(first)));
        EXPECT_THROW(doomed.get(), DeadlineExceeded);
    }
    EXPECT_GE(session.batcher().stats().expired, 2);
    FaultInjector::instance().clear();
}

TEST(FaultInjection, SubmitAfterCloseFailsWithServiceClosed) {
    const circuit::ParametricSystem sys = test_system();
    FaultInjector::instance().clear();
    ModelCache cache;
    StudyService service(cache, service_options());
    StudySession& session = service.open(sys);

    // A standalone batcher on the session's engine: close() it, then submit.
    QueryBatcher batcher(session.study().rom_engine(), nullptr, {}, 0.0, 0,
                         service_options().batcher);
    auto before = batcher.submit_transfer({0.0, 0.0}, cplx(0.0, 1.0));
    batcher.close();
    ASSERT_TRUE(resolves(before));
    EXPECT_TRUE(got_value(std::move(before)));  // drained before close returned

    auto after = batcher.submit_transfer({0.0, 0.0}, cplx(0.0, 1.0));
    ASSERT_TRUE(resolves(after));
    EXPECT_THROW(after.get(), ServiceClosed);
    EXPECT_EQ(batcher.stats().rejected_closed, 1);
    batcher.flush();  // no-op after close, must not hang
    batcher.close();  // idempotent
}

// ---------------------------------------------------------------------------
// Poisoned keys, degraded sessions, healing.
// ---------------------------------------------------------------------------

TEST(FaultInjection, RepeatedBuildFailurePoisonsKeyThenHeals) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = [] {
        mor::LowRankPmorOptions o;
        o.s_order = 3;
        o.param_order = 2;
        return o;
    }();
    const CacheKey key = cache_key(sys, ropts);

    ModelCacheOptions copts;
    copts.poison_after = 2;
    copts.poison_ttl_ms = 60.0;
    ModelCache cache(copts);

    std::atomic<int> builder_runs{0};
    auto failing = [&]() -> mor::ReducedModel {
        ++builder_runs;
        throw varmor::Error("reduction exploded");
    };

    EXPECT_THROW((void)cache.get_or_build(key, failing), varmor::Error);
    EXPECT_FALSE(cache.poisoned(key));  // one failure: not yet poisoned
    EXPECT_THROW((void)cache.get_or_build(key, failing), varmor::Error);
    EXPECT_TRUE(cache.poisoned(key));  // second consecutive failure: poisoned
    EXPECT_EQ(builder_runs.load(), 2);

    // Poisoned: fails FAST with the stored error, builder not re-run.
    EXPECT_THROW((void)cache.get_or_build(key, failing), varmor::Error);
    EXPECT_EQ(builder_runs.load(), 2);
    EXPECT_EQ(cache.stats().poison_hits, 1);
    EXPECT_EQ(cache.stats().poisonings, 1);

    // Poison expires; a now-working builder heals the key.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_FALSE(cache.poisoned(key));
    const ModelCache::ModelPtr model = cache.get_or_build(
        key, [&] { return mor::lowrank_pmor(sys, ropts).model; });
    ASSERT_TRUE(model != nullptr);
    EXPECT_FALSE(cache.poisoned(key));
    EXPECT_EQ(cache.stats().builds, 1);
}

TEST(FaultInjection, DegradedSessionServesExactFullPencilAnswersAndHeals) {
    const circuit::ParametricSystem sys = test_system();
    FaultInjector::instance().clear();
    ModelCache cache(fault_cache_options(fresh_disk_dir("varmor_fault_degraded")));
    StudyService service(cache, service_options());

    StudySession* degraded = nullptr;
    {
        ScopedFault fault("model_cache.build", FaultInjector::fail("no model"));
        degraded = &service.open(sys);
        ASSERT_TRUE(degraded->degraded());
        EXPECT_TRUE(cache.poisoned(degraded->key()));

        // While poisoned, reopening returns the SAME degraded session — no
        // rebuild storm.
        EXPECT_EQ(&service.open(sys), degraded);

        // Degraded serving is exact full-pencil evaluation: the batched path
        // and the serve-alone path agree bitwise, and delays are untouched
        // (they were full-system all along).
        const std::vector<double> p{0.1, -0.05};
        const cplx s(0.0, util::two_pi_f(0.05));
        auto tfut = degraded->transfer(p, s);
        auto dfut = degraded->delay(p);
        auto pfut = degraded->poles(p);
        ASSERT_TRUE(resolves(tfut));
        ASSERT_TRUE(resolves(dfut));
        ASSERT_TRUE(resolves(pfut));
        expect_bit_identical(tfut.get(), degraded->transfer_now(p, s));
        const DelayResult d = dfut.get();
        const DelayResult ref = degraded->delay_now(p);
        EXPECT_EQ(d.delay.has_value(), ref.delay.has_value());
        if (d.delay) EXPECT_EQ(*d.delay, *ref.delay);
        const auto poles = pfut.get();
        const auto ref_poles = degraded->poles_now(p);
        ASSERT_EQ(poles.size(), ref_poles.size());
        for (std::size_t k = 0; k < poles.size(); ++k)
            EXPECT_EQ(poles[k], ref_poles[k]);
    }

    // Fault gone + poison expired: reopening builds the real model and swaps
    // in a full session; the old reference keeps working (retired, not
    // destroyed).
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    StudySession& healed = service.open(sys);
    EXPECT_FALSE(healed.degraded());
    EXPECT_NE(&healed, degraded);
    EXPECT_EQ(cache.stats().builds, 1);
    auto old_fut = degraded->transfer({0.0, 0.0}, cplx(0.0, 1.0));
    ASSERT_TRUE(resolves(old_fut));
    EXPECT_TRUE(got_value(std::move(old_fut)));
    service.flush_all();  // covers retired sessions too
    FaultInjector::instance().clear();
}

TEST(FaultInjection, WedgedBuildWaiterHonorsDeadline) {
    const circuit::ParametricSystem sys = test_system();
    FaultInjector::instance().clear();
    const mor::LowRankPmorOptions ropts = [] {
        mor::LowRankPmorOptions o;
        o.s_order = 3;
        o.param_order = 2;
        return o;
    }();
    const CacheKey key = cache_key(sys, ropts);
    ModelCache cache;

    ScopedFault wedge("model_cache.build", FaultInjector::sleep_for(150.0));
    std::promise<void> started;
    std::thread winner([&] {
        started.set_value();
        (void)cache.get_or_build(key,
                                 [&] { return mor::lowrank_pmor(sys, ropts).model; });
    });
    started.get_future().get();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let it wedge

    // The waiter gives up with DeadlineExceeded; the winner still completes
    // and the key is served afterwards with zero extra builds.
    EXPECT_THROW((void)cache.get_or_build(
                     key, [&] { return mor::lowrank_pmor(sys, ropts).model; },
                     util::Deadline::after_ms(10.0)),
                 util::DeadlineExceeded);
    winner.join();
    EXPECT_EQ(cache.stats().builds, 1);
    EXPECT_NE(cache.lookup(key), nullptr);
    FaultInjector::instance().clear();
}

TEST(FaultInjection, TransientDiskWriteFaultIsAbsorbedByRetry) {
    const circuit::ParametricSystem sys = test_system();
    FaultInjector::instance().clear();
    ModelCacheOptions copts =
        fault_cache_options(fresh_disk_dir("varmor_fault_retry"));
    ModelCache cache(copts);
    StudyService service(cache, service_options());

    {
        ScopedFault flaky("model_cache.disk_write",
                          FaultInjector::fail_first(1, "EIO once"));
        StudySession& session = service.open(sys);
        EXPECT_FALSE(session.degraded());
    }
    // The retry absorbed the transient failure: artifact on disk, counted.
    const DiskStoreStats ds = cache.disk_stats();
    EXPECT_EQ(ds.stores, 1);
    EXPECT_GE(ds.retries, 1);
    EXPECT_EQ(ds.store_failures, 0);
    EXPECT_TRUE(std::filesystem::exists(
        cache.disk_path(cache_key(sys, service.options().reduction))));
    FaultInjector::instance().clear();
}

}  // namespace
}  // namespace varmor::service
