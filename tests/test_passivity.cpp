#include <gtest/gtest.h>

#include "circuit/generators.h"
#include "circuit/mna.h"
#include "mor/lowrank_pmor.h"
#include "mor/passivity.h"
#include "mor_test_utils.h"

namespace varmor::mor {
namespace {

using la::Matrix;
using varmor::testing::small_parametric_rc;

TEST(Passivity, SpdSystemPasses) {
    Matrix g{{2.0, -1.0}, {-1.0, 2.0}};
    Matrix c{{1.0, 0.0}, {0.0, 1.0}};
    Matrix b(2, 1);
    b(0, 0) = 1.0;
    auto report = check_passivity(g, c, b, b);
    EXPECT_TRUE(report.passive());
    EXPECT_GE(report.min_eig_g_sym, 0.0);
}

TEST(Passivity, NegativeResistanceFails) {
    Matrix g{{-1.0, 0.0}, {0.0, 1.0}};
    Matrix c = Matrix::identity(2);
    Matrix b(2, 1);
    b(0, 0) = 1.0;
    auto report = check_passivity(g, c, b, b);
    EXPECT_FALSE(report.passive());
    EXPECT_FALSE(report.g_symmetric_part_psd);
    EXPECT_LT(report.min_eig_g_sym, 0.0);
}

TEST(Passivity, SkewGBlockAllowed) {
    // PRIMA-form RLC G has a skew incidence block: symmetric part is PSD.
    Matrix g{{1.0, 1.0}, {-1.0, 0.0}};
    Matrix c{{1.0, 0.0}, {0.0, 1e-9}};
    Matrix b(2, 1);
    b(0, 0) = 1.0;
    EXPECT_TRUE(check_passivity(g, c, b, b).passive());
}

TEST(Passivity, AsymmetricCFails) {
    Matrix g = Matrix::identity(2);
    Matrix c{{1.0, 0.5}, {0.0, 1.0}};  // not symmetric
    Matrix b(2, 1);
    b(0, 0) = 1.0;
    EXPECT_FALSE(check_passivity(g, c, b, b).c_psd);
}

TEST(Passivity, BNotEqualLFails) {
    Matrix g = Matrix::identity(2);
    Matrix c = Matrix::identity(2);
    Matrix b(2, 1), l(2, 1);
    b(0, 0) = 1.0;
    l(1, 0) = 1.0;
    EXPECT_FALSE(check_passivity(g, c, b, l).passive());
}

TEST(Passivity, FullGeneratorSystemsPassive) {
    circuit::RandomRcOptions rc_opts;
    rc_opts.unknowns = 60;
    EXPECT_TRUE(
        check_passivity(assemble_mna(circuit::random_rc_net(rc_opts)), {0.0, 0.0}).passive());

    circuit::RlcBusOptions bus_opts;
    bus_opts.segments_per_line = 8;
    EXPECT_TRUE(
        check_passivity(assemble_mna(circuit::coupled_rlc_bus(bus_opts)), {0.0, 0.0})
            .passive());
}

/// Key paper claim: congruence projection keeps every parametric instance
/// passive as long as the full model at that p is passive.
class ProjectionPassivityProperty : public ::testing::TestWithParam<double> {};

TEST_P(ProjectionPassivityProperty, ReducedPerturbedModelsPassive) {
    const double p_mag = GetParam();
    circuit::ParametricSystem sys = small_parametric_rc(35, 2, 61);
    LowRankPmorResult r = lowrank_pmor(sys, {});
    EXPECT_TRUE(check_passivity(r.model, {p_mag, -p_mag}).passive());
    EXPECT_TRUE(check_passivity(r.model, {-p_mag, p_mag}).passive());
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, ProjectionPassivityProperty,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace varmor::mor
