// NEGATIVE-COMPILE TEST — this file must NOT compile under
// -Werror=thread-safety. CMake builds it via an EXCLUDE_FROM_ALL target
// wrapped in a WILL_FAIL ctest entry: the test PASSES when clang rejects it.
//
// Violation exercised: reading and writing a GUARDED_BY field without
// holding its mutex.

#include "util/thread_annotations.h"

namespace {

class Account {
public:
    void deposit(long amount) {
        varmor::util::MutexLock lock(mu_);
        balance_ += amount;
    }

    long racy_balance() const {
        return balance_;  // BUG: reads balance_ without mu_
    }

private:
    mutable varmor::util::Mutex mu_;
    long balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
    Account account;
    account.deposit(10);
    return account.racy_balance() == 10 ? 0 : 1;
}
