// NEGATIVE-COMPILE TEST — this file must NOT compile under
// -Werror=thread-safety (see ts_unguarded_field.cpp for the harness shape).
//
// Violation exercised: calling a REQUIRES(mutex) method without holding the
// mutex — the *_locked helper convention ModelCache / MpmcQueue /
// TrapezoidBatchCache rely on.

#include "util/thread_annotations.h"

namespace {

class Counter {
public:
    void increment() {
        increment_locked();  // BUG: REQUIRES(mu_) without holding mu_
    }

private:
    void increment_locked() REQUIRES(mu_) { ++value_; }

    varmor::util::Mutex mu_;
    long value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
    Counter counter;
    counter.increment();
    return 0;
}
