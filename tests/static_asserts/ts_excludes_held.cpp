// NEGATIVE-COMPILE TEST — this file must NOT compile under
// -Werror=thread-safety (see ts_unguarded_field.cpp for the harness shape).
//
// Violation exercised: re-entering an EXCLUDES(mutex) method while already
// holding the mutex — the self-deadlock the build-outside-the-lock contract
// (SingleFlight::run, ModelCache::build_miss, TrapezoidBatchCache::get)
// exists to prevent.

#include "util/thread_annotations.h"

namespace {

class Cache {
public:
    int get() EXCLUDES(mu_) {
        varmor::util::MutexLock lock(mu_);
        if (value_ < 0) return refresh();  // BUG: calls EXCLUDES(mu_) with mu_ held
        return value_;
    }

    int refresh() EXCLUDES(mu_) {
        const int fresh = 42;  // stands in for a slow rebuild
        varmor::util::MutexLock lock(mu_);
        value_ = fresh;
        return value_;
    }

private:
    varmor::util::Mutex mu_;
    int value_ GUARDED_BY(mu_) = -1;
};

}  // namespace

int main() {
    Cache cache;
    return cache.get() == 42 ? 0 : 1;
}
