// POSITIVE-COMPILE TEST — this file MUST compile cleanly under
// -Werror=thread-safety. It exercises every annotation the project uses
// (GUARDED_BY, REQUIRES, EXCLUDES, ACQUIRE/RELEASE via Mutex/MutexLock,
// RETURN_CAPABILITY, CondVar waits) in the shapes the codebase uses them,
// proving the negative tests next to it fail for the violation they plant
// and not because the harness itself is broken.

#include <deque>

#include "util/thread_annotations.h"

namespace {

using varmor::util::CondVar;
using varmor::util::Mutex;
using varmor::util::MutexLock;

/// The project's canonical shapes in miniature: guarded state, a REQUIRES
/// helper, EXCLUDES public methods, a condition wait loop, and a
/// RETURN_CAPABILITY accessor.
class Registry {
public:
    Mutex& mu() RETURN_CAPABILITY(mu_) { return mu_; }

    void publish(int item) EXCLUDES(mu_) {
        {
            MutexLock lock(mu_);
            items_.push_back(item);
        }
        ready_.notify_one();
    }

    int consume() EXCLUDES(mu_) {
        MutexLock lock(mu_);
        while (items_.empty()) ready_.wait(mu_);
        return take_locked();
    }

    int size_with_manual_lock() EXCLUDES(mu_) {
        mu().lock();
        const int n = static_cast<int>(items_.size());
        mu().unlock();
        return n;
    }

private:
    int take_locked() REQUIRES(mu_) {
        const int front = items_.front();
        items_.pop_front();
        return front;
    }

    Mutex mu_;
    CondVar ready_;
    std::deque<int> items_ GUARDED_BY(mu_);
};

}  // namespace

int main() {
    Registry registry;
    registry.publish(7);
    const int got = registry.consume();
    return got == 7 && registry.size_with_manual_lock() == 0 ? 0 : 1;
}
