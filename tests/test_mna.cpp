#include <gtest/gtest.h>

#include "circuit/mna.h"
#include "la/ops.h"
#include "test_helpers.h"

namespace varmor::circuit {
namespace {

using la::Matrix;
using varmor::testing::expect_near;

/// Two-node RC: R from node 1 to 2, C at each node, port at 1.
Netlist two_node_rc() {
    Netlist net;
    const int a = net.add_node();
    const int b = net.add_node();
    net.add_resistor(a, b, 2.0);     // g = 0.5
    net.add_capacitor(a, 0, 1e-12);
    net.add_capacitor(b, 0, 2e-12);
    net.add_port(a);
    return net;
}

TEST(Mna, HandComputedRcStamps) {
    ParametricSystem sys = assemble_mna(two_node_rc());
    EXPECT_EQ(sys.size(), 2);
    Matrix g = sys.g0.to_dense();
    EXPECT_DOUBLE_EQ(g(0, 0), 0.5);
    EXPECT_DOUBLE_EQ(g(1, 1), 0.5);
    EXPECT_DOUBLE_EQ(g(0, 1), -0.5);
    EXPECT_DOUBLE_EQ(g(1, 0), -0.5);
    Matrix c = sys.c0.to_dense();
    EXPECT_DOUBLE_EQ(c(0, 0), 1e-12);
    EXPECT_DOUBLE_EQ(c(1, 1), 2e-12);
    EXPECT_DOUBLE_EQ(c(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(sys.b(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(sys.b(1, 0), 0.0);
}

TEST(Mna, GroundedElementStampsDiagonalOnly) {
    Netlist net;
    const int a = net.add_node();
    net.add_resistor(a, 0, 4.0);
    net.add_port(a);
    ParametricSystem sys = assemble_mna(net);
    EXPECT_EQ(sys.size(), 1);
    EXPECT_DOUBLE_EQ(sys.g0.to_dense()(0, 0), 0.25);
}

TEST(Mna, InductorPrimaForm) {
    // R-L chain: node1 -R- node2 -L- ground.
    Netlist net;
    const int a = net.add_node();
    const int b = net.add_node();
    net.add_resistor(a, b, 1.0);
    net.add_inductor(b, 0, 1e-9);
    net.add_capacitor(a, 0, 1e-12);
    net.add_port(a);
    ParametricSystem sys = assemble_mna(net);
    ASSERT_EQ(sys.size(), 3);  // 2 nodes + 1 inductor current

    Matrix g = sys.g0.to_dense();
    // Incidence column: current leaves node b into the inductor.
    EXPECT_DOUBLE_EQ(g(1, 2), 1.0);
    EXPECT_DOUBLE_EQ(g(2, 1), -1.0);
    EXPECT_DOUBLE_EQ(g(2, 2), 0.0);
    // G + G^T must be PSD: skew incidence cancels.
    Matrix gs = la::symmetric_part(g);
    EXPECT_DOUBLE_EQ(gs(1, 2), 0.0);

    Matrix c = sys.c0.to_dense();
    EXPECT_DOUBLE_EQ(c(2, 2), 1e-9);
}

TEST(Mna, SensitivityMatricesMatchElementDerivatives) {
    Netlist net(2);
    const int a = net.add_node();
    const int b = net.add_node();
    net.add_resistor(a, b, 2.0, {0.1, -0.05});  // dg/dp
    net.add_capacitor(b, 0, 1e-12, {2e-13, 0.0});
    net.add_port(a);
    ParametricSystem sys = assemble_mna(net);
    ASSERT_EQ(sys.num_params(), 2);

    Matrix dg0 = sys.dg[0].to_dense();
    EXPECT_DOUBLE_EQ(dg0(0, 0), 0.1);
    EXPECT_DOUBLE_EQ(dg0(0, 1), -0.1);
    Matrix dc0 = sys.dc[0].to_dense();
    EXPECT_DOUBLE_EQ(dc0(1, 1), 2e-13);
    // Second parameter has no capacitance effect.
    EXPECT_EQ(sys.dc[1].nnz(), 0);
}

TEST(Mna, AffineAssemblyMatchesPerturbedRestamp) {
    // G(p) from the parametric system must equal stamping perturbed values.
    Netlist net(1);
    const int a = net.add_node();
    const int b = net.add_node();
    const double g0 = 0.5, dg = 0.1;
    net.add_resistor(a, b, 1.0 / g0, {dg});
    net.add_capacitor(b, 0, 1e-12, {1e-13});
    net.add_port(a);
    ParametricSystem sys = assemble_mna(net);

    const double p = 0.7;
    Netlist pert(0);
    const int a2 = pert.add_node();
    const int b2 = pert.add_node();
    pert.add_resistor(a2, b2, 1.0 / (g0 + dg * p));
    pert.add_capacitor(b2, 0, 1e-12 + 1e-13 * p);
    pert.add_port(a2);
    ParametricSystem ref = assemble_mna(pert);

    expect_near(sys.g_at({p}).to_dense(), ref.g0.to_dense(), 1e-15);
    expect_near(sys.c_at({p}).to_dense(), ref.c0.to_dense(), 1e-27);
}

TEST(Mna, RequiresPortsAndNodes) {
    Netlist empty;
    EXPECT_THROW(assemble_mna(empty), Error);
    Netlist no_port;
    no_port.add_node();
    EXPECT_THROW(assemble_mna(no_port), Error);
}

TEST(Mna, MultiPortB) {
    Netlist net;
    const int a = net.add_node();
    const int b = net.add_node();
    net.add_resistor(a, b, 1.0);
    net.add_capacitor(b, 0, 1e-15);
    net.add_port(a);
    net.add_port(b);
    ParametricSystem sys = assemble_mna(net);
    EXPECT_EQ(sys.num_ports(), 2);
    EXPECT_DOUBLE_EQ(sys.b(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(sys.b(1, 1), 1.0);
    expect_near(sys.b, sys.l, 0.0);  // B == L for port formulation
}

TEST(ParametricSystemTest, ValidateCatchesInconsistency) {
    ParametricSystem sys = assemble_mna(two_node_rc());
    sys.b = Matrix(3, 1);  // wrong row count
    EXPECT_THROW(sys.validate(), Error);
}

TEST(ParametricSystemTest, GAtRejectsWrongParameterCount) {
    ParametricSystem sys = assemble_mna(two_node_rc());
    EXPECT_THROW(sys.g_at({1.0}), Error);  // system has zero parameters
}

}  // namespace
}  // namespace varmor::circuit
