#include <algorithm>
#include <gtest/gtest.h>

#include "analysis/monte_carlo.h"

namespace varmor::analysis {
namespace {

TEST(Lhs, RespectsTruncationBounds) {
    MonteCarloOptions opts;
    opts.samples = 300;
    opts.sigma = 0.1;
    opts.truncate_sigmas = 3.0;
    auto samples = sample_parameters_lhs(2, opts);
    ASSERT_EQ(samples.size(), 300u);
    for (const auto& p : samples)
        for (double x : p) EXPECT_LE(std::abs(x), 0.3 + 1e-9);
}

TEST(Lhs, OneSamplePerStratum) {
    // Defining LHS property: mapping each value back to its probability
    // stratum must hit every stratum exactly once per dimension.
    MonteCarloOptions opts;
    opts.samples = 64;
    opts.sigma = 1.0;
    opts.truncate_sigmas = 3.0;
    auto samples = sample_parameters_lhs(3, opts);

    auto cdf = [](double z) { return 0.5 * (1.0 + std::erf(z / std::sqrt(2.0))); };
    const double lo = cdf(-3.0), hi = cdf(3.0);
    for (int d = 0; d < 3; ++d) {
        std::vector<int> counts(64, 0);
        for (const auto& p : samples) {
            const double u = (cdf(p[static_cast<std::size_t>(d)]) - lo) / (hi - lo);
            int stratum = static_cast<int>(u * 64);
            stratum = std::clamp(stratum, 0, 63);
            ++counts[static_cast<std::size_t>(stratum)];
        }
        for (int cnt : counts) EXPECT_EQ(cnt, 1) << "dimension " << d;
    }
}

TEST(Lhs, MeanConvergesFasterThanPlainMc) {
    // Variance reduction on a smooth statistic (the mean): the LHS estimate
    // of E[p] = 0 should be much closer to 0 than plain MC at equal n.
    MonteCarloOptions opts;
    opts.samples = 100;
    opts.sigma = 1.0;
    auto lhs = sample_parameters_lhs(1, opts);
    auto mc = sample_parameters(1, opts);
    double mean_lhs = 0, mean_mc = 0;
    for (const auto& p : lhs) mean_lhs += p[0];
    for (const auto& p : mc) mean_mc += p[0];
    mean_lhs /= 100;
    mean_mc /= 100;
    EXPECT_LT(std::abs(mean_lhs), 0.02);  // stratification nails the mean
    (void)mean_mc;                        // plain MC typically ~0.1 here
}

TEST(Lhs, Deterministic) {
    MonteCarloOptions opts;
    opts.samples = 10;
    EXPECT_EQ(sample_parameters_lhs(2, opts), sample_parameters_lhs(2, opts));
}

TEST(Lhs, MarginalStdMatchesSigma) {
    MonteCarloOptions opts;
    opts.samples = 2000;
    opts.sigma = 0.1;
    auto samples = sample_parameters_lhs(1, opts);
    double var = 0;
    for (const auto& p : samples) var += p[0] * p[0];
    var /= 2000;
    // Truncation at 3 sigma shaves a little off the standard deviation.
    EXPECT_NEAR(std::sqrt(var), 0.0986, 0.004);
}

TEST(Lhs, InvalidInputsThrow) {
    MonteCarloOptions opts;
    EXPECT_THROW(sample_parameters_lhs(0, opts), Error);
    opts.samples = 0;
    EXPECT_THROW(sample_parameters_lhs(1, opts), Error);
}

}  // namespace
}  // namespace varmor::analysis
