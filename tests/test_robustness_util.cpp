// The serving layer's concurrency primitives in isolation: the bounded
// MpmcQueue admission semantics (kOk / kFull / kClosed, item ownership on
// rejection, force markers), SingleFlight coalescing + failure broadcast +
// waiter deadlines, Deadline arithmetic, and FileLock exclusivity.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "util/deadline.h"
#include "util/file_lock.h"
#include "util/mpmc_queue.h"
#include "util/single_flight.h"

namespace varmor::util {
namespace {

TEST(MpmcQueue, BoundedPushShedsAtCapacityWithoutConsumingItem) {
    MpmcQueue<std::string> q(2);
    std::string a = "a", b = "b", c = "c";
    EXPECT_EQ(q.try_push(a), PushStatus::kOk);
    EXPECT_EQ(q.try_push(b), PushStatus::kOk);

    // At capacity: shed — and the REJECTED item is not moved-from, so the
    // caller can still fail its promise cleanly.
    EXPECT_EQ(q.try_push(c), PushStatus::kFull);
    EXPECT_EQ(c, "c");
    EXPECT_EQ(q.size(), 2u);

    // Control markers bypass the capacity bound...
    EXPECT_EQ(q.try_push(c, /*force=*/true), PushStatus::kOk);
    EXPECT_EQ(q.size(), 3u);

    // ...but nothing bypasses close().
    q.close();
    std::string d = "d";
    EXPECT_EQ(q.try_push(d, /*force=*/true), PushStatus::kClosed);
    EXPECT_EQ(d, "d");

    // The tail stays drainable after close, in arrival order.
    EXPECT_EQ(q.pop().value(), "a");
    EXPECT_EQ(q.pop().value(), "b");
    EXPECT_EQ(q.pop().value(), "c");
    EXPECT_EQ(q.pop(), std::nullopt);  // closed and drained: no block
}

TEST(MpmcQueue, ThrowingPushReportsFullAndClosed) {
    MpmcQueue<int> q(1);
    q.push(1);
    EXPECT_THROW(q.push(2), Error);  // full
    (void)q.try_pop();
    q.close();
    EXPECT_THROW(q.push(3), Error);  // closed
    EXPECT_TRUE(q.closed());
}

TEST(MpmcQueue, PopUntilTimesOutWithNullopt) {
    MpmcQueue<int> q;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(q.pop_until(t0 + std::chrono::milliseconds(20)), std::nullopt);
    EXPECT_GE(std::chrono::steady_clock::now() - t0, std::chrono::milliseconds(20));

    int v = 7;
    EXPECT_EQ(q.try_push(v), PushStatus::kOk);
    EXPECT_EQ(q.pop_until(std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(20))
                  .value(),
              7);
}

TEST(MpmcQueue, ManyProducersManyConsumersLoseNothing) {
    const int kProducers = 4, kConsumers = 3, kPerProducer = 200;
    MpmcQueue<int> q;
    std::atomic<long> sum{0};
    std::atomic<int> count{0};

    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c)
        consumers.emplace_back([&] {
            while (auto v = q.pop()) {
                sum += *v;
                ++count;
            }
        });
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
        });
    for (auto& t : producers) t.join();
    q.close();
    for (auto& t : consumers) t.join();

    const long n = kProducers * kPerProducer;
    EXPECT_EQ(count.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(SingleFlight, ConcurrentCallersCoalesceOntoOneBuild) {
    SingleFlight<int, int> flight;
    std::atomic<int> builds{0};
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();

    const int kCallers = 6;
    std::vector<std::future<int>> results;
    std::atomic<int> entered{0};
    for (int i = 0; i < kCallers; ++i)
        results.push_back(std::async(std::launch::async, [&] {
            ++entered;
            return flight.run(42, [&] {
                ++builds;
                gate.wait();  // hold the flight open so everyone piles on
                return 7;
            });
        }));
    // Wait until every caller is inside run() (winner building, rest waiting).
    while (entered.load() < kCallers) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(flight.in_flight(), 1);
    release.set_value();

    for (auto& r : results) EXPECT_EQ(r.get(), 7);
    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(flight.in_flight(), 0);

    // The flight is forgotten once done: a later run() re-executes.
    EXPECT_EQ(flight.run(42, [&] { ++builds; return 8; }), 8);
    EXPECT_EQ(builds.load(), 2);
}

TEST(SingleFlight, WinnerFailureReachesEveryWaiterAndClearsTheFlight) {
    SingleFlight<std::string, int> flight;
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    std::atomic<bool> winner_in{false};

    auto winner = std::async(std::launch::async, [&] {
        return flight.run("k", [&]() -> int {
            winner_in = true;
            gate.wait();
            throw Error("build exploded");
        });
    });
    while (!winner_in.load()) std::this_thread::yield();
    auto waiter = std::async(std::launch::async,
                             [&] { return flight.run("k", [] { return 1; }); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    release.set_value();

    EXPECT_THROW(winner.get(), Error);
    EXPECT_THROW(waiter.get(), Error);  // the winner's failure, shared
    EXPECT_EQ(flight.in_flight(), 0);

    // The failed flight left nothing behind: the key builds fresh.
    EXPECT_EQ(flight.run("k", [] { return 5; }), 5);
}

TEST(SingleFlight, WaiterDeadlineExpiresWithoutDisturbingTheWinner) {
    SingleFlight<int, int> flight;
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    std::atomic<bool> winner_in{false};

    auto winner = std::async(std::launch::async, [&] {
        return flight.run(1, [&] {
            winner_in = true;
            gate.wait();
            return 9;
        });
    });
    while (!winner_in.load()) std::this_thread::yield();

    EXPECT_THROW(flight.run(1, [] { return 0; }, Deadline::after_ms(10.0)),
                 DeadlineExceeded);
    release.set_value();
    EXPECT_EQ(winner.get(), 9);  // the impatient waiter cost the winner nothing
}

TEST(Deadline, DefaultNeverExpiresAndAfterMsArithmetic) {
    const Deadline never;
    EXPECT_FALSE(never.is_set());
    EXPECT_FALSE(never.expired());
    EXPECT_FALSE(Deadline::never().is_set());

    EXPECT_TRUE(Deadline::after_ms(-1.0).expired());
    EXPECT_TRUE(Deadline::after_ms(0.0).expired());

    const Deadline soon = Deadline::after_ms(30.0);
    EXPECT_TRUE(soon.is_set());
    EXPECT_FALSE(soon.expired());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_TRUE(soon.expired());
}

TEST(FileLock, ExclusiveAcrossDescriptorsAndReleasable) {
    const std::string path = ::testing::TempDir() + "/varmor_file_lock_test";
    std::filesystem::remove(path);

    FileLock held = FileLock::acquire(path);
    ASSERT_TRUE(held.locked());

    // flock exclusivity is per open descriptor, so a second acquire through
    // a fresh descriptor conflicts even inside one process.
    FileLock second = FileLock::try_acquire(path);
    EXPECT_FALSE(second.locked());

    held.release();
    EXPECT_FALSE(held.locked());
    held.release();  // idempotent

    FileLock third = FileLock::try_acquire(path);
    EXPECT_TRUE(third.locked());

    // Move transfers ownership; the lock file itself is never deleted.
    FileLock moved = std::move(third);
    EXPECT_TRUE(moved.locked());
    EXPECT_FALSE(third.locked());
    moved.release();
    EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(FileLock, BlockedAcquireProceedsOnceHolderReleases) {
    const std::string path = ::testing::TempDir() + "/varmor_file_lock_block";
    std::filesystem::remove(path);

    FileLock held = FileLock::acquire(path);
    std::atomic<bool> acquired{false};
    std::thread waiter([&] {
        FileLock lock = FileLock::acquire(path);  // blocks until release below
        acquired = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(acquired.load());
    held.release();
    waiter.join();
    EXPECT_TRUE(acquired.load());
}

}  // namespace
}  // namespace varmor::util
