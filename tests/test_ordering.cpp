#include <gtest/gtest.h>

#include "sparse/ordering.h"
#include "sparse/splu.h"
#include "test_helpers.h"

namespace varmor::sparse {
namespace {

Csc grid_laplacian(int k) {
    // k x k 5-point grid, shifted to be nonsingular.
    const int n = k * k;
    Triplets t(n, n);
    auto id = [k](int r, int c) { return r * k + c; };
    for (int r = 0; r < k; ++r) {
        for (int c = 0; c < k; ++c) {
            t.add(id(r, c), id(r, c), 4.1);
            if (r > 0) t.add(id(r, c), id(r - 1, c), -1.0);
            if (r < k - 1) t.add(id(r, c), id(r + 1, c), -1.0);
            if (c > 0) t.add(id(r, c), id(r, c - 1), -1.0);
            if (c < k - 1) t.add(id(r, c), id(r, c + 1), -1.0);
        }
    }
    return Csc(t);
}

Csc path_graph(int n) {
    Triplets t(n, n);
    for (int i = 0; i < n; ++i) {
        t.add(i, i, 2.0);
        if (i > 0) {
            t.add(i, i - 1, -1.0);
            t.add(i - 1, i, -1.0);
        }
    }
    return Csc(t);
}

TEST(Ordering, MinDegreeIsPermutation) {
    Csc a = grid_laplacian(8);
    EXPECT_TRUE(is_permutation(min_degree_ordering(a), a.rows()));
}

TEST(Ordering, RcmIsPermutation) {
    Csc a = grid_laplacian(8);
    EXPECT_TRUE(is_permutation(rcm_ordering(a), a.rows()));
}

TEST(Ordering, NaturalIsIdentity) {
    auto p = natural_ordering(5);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(p[static_cast<std::size_t>(i)], i);
}

TEST(Ordering, IsPermutationRejectsBadInputs) {
    EXPECT_FALSE(is_permutation({0, 0, 1}, 3));   // duplicate
    EXPECT_FALSE(is_permutation({0, 1, 3}, 3));   // out of range
    EXPECT_FALSE(is_permutation({0, 1}, 3));      // wrong length
    EXPECT_TRUE(is_permutation({2, 0, 1}, 3));
}

TEST(Ordering, MinDegreeReducesGridFillVsNatural) {
    Csc a = grid_laplacian(16);  // 256 nodes
    SparseLu::Options nat;
    nat.ordering = SparseLu::Options::Ordering::natural;
    SparseLu::Options md;
    md.ordering = SparseLu::Options::Ordering::min_degree;
    SparseLu lu_nat(a, nat);
    SparseLu lu_md(a, md);
    // Minimum degree must not be (much) worse than natural on a grid; for
    // 2-D grids it is typically clearly better.
    EXPECT_LE(lu_md.nnz_l() + lu_md.nnz_u(),
              (lu_nat.nnz_l() + lu_nat.nnz_u()) * 11 / 10);
}

TEST(Ordering, PathGraphMinDegreeHasNoFill) {
    const int n = 100;
    Csc a = path_graph(n);
    SparseLu::Options md;
    md.ordering = SparseLu::Options::Ordering::min_degree;
    SparseLu lu(a, md);
    // A path eliminated from the leaves inward yields zero fill: L and U keep
    // the tridiagonal budget (2n-1 each counting diagonals).
    EXPECT_LE(lu.nnz_l(), 2 * n);
    EXPECT_LE(lu.nnz_u(), 2 * n);
}

TEST(Ordering, DisconnectedGraphHandled) {
    // Two disjoint blocks: both orderings must still enumerate every node.
    Triplets t(6, 6);
    for (int i = 0; i < 3; ++i) t.add(i, i, 1.0);
    for (int i = 3; i < 6; ++i) {
        t.add(i, i, 2.0);
        if (i > 3) {
            t.add(i, i - 1, -1.0);
            t.add(i - 1, i, -1.0);
        }
    }
    Csc a(t);
    EXPECT_TRUE(is_permutation(min_degree_ordering(a), 6));
    EXPECT_TRUE(is_permutation(rcm_ordering(a), 6));
}

class OrderingProperty : public ::testing::TestWithParam<int> {};

TEST_P(OrderingProperty, PermutationsValidOnRandomPatterns) {
    const int n = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(n) * 3);
    Triplets t(n, n);
    for (int j = 0; j < n; ++j) {
        t.add(j, j, 1.0);
        for (int k = 0; k < 3; ++k) t.add(rng.below(n), j, 0.5);
    }
    Csc a(t);
    EXPECT_TRUE(is_permutation(min_degree_ordering(a), n));
    EXPECT_TRUE(is_permutation(rcm_ordering(a), n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, OrderingProperty, ::testing::Values(1, 2, 5, 17, 64, 200));

}  // namespace
}  // namespace varmor::sparse
