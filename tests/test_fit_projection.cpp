#include <gtest/gtest.h>

#include "la/lu_dense.h"
#include "la/orth.h"
#include "mor/fit_projection.h"
#include "mor/multi_point.h"
#include "mor_test_utils.h"

namespace varmor::mor {
namespace {

using varmor::testing::small_parametric_rc;

std::vector<std::vector<double>> cross_samples() {
    return {{0.0, 0.0}, {1.0, 0.0},  {-1.0, 0.0}, {0.0, 1.0}, {0.0, -1.0},
            {1.0, 1.0}, {-1.0, -1.0}, {1.0, -1.0}, {-1.0, 1.0}};
}

TEST(FitProjection, RequiresEnoughSamples) {
    circuit::ParametricSystem sys = small_parametric_rc(20, 2, 91);
    FitProjectionOptions opts;
    opts.quadratic = true;  // needs 1 + 2*2 = 5 samples
    EXPECT_THROW(FittedProjection(sys, {{0.0, 0.0}, {1.0, 0.0}}, opts), Error);
}

TEST(FitProjection, BasisAtIsOrthonormal) {
    circuit::ParametricSystem sys = small_parametric_rc(25, 2, 92);
    FittedProjection fit(sys, cross_samples());
    la::Matrix v = fit.basis_at({0.4, -0.6});
    EXPECT_LE(la::orthonormality_error(v), 1e-10);
    EXPECT_EQ(fit.factorizations(), 9);
}

TEST(FitProjection, ReproducesSampleExactlyAtSamplePoints) {
    // With enough polynomial terms the fit interpolates the sampled bases,
    // so at a sample point the model should match a directly-computed PRIMA
    // model there (same subspace up to fitting residual).
    circuit::ParametricSystem sys = small_parametric_rc(30, 1, 93);
    FitProjectionOptions opts;
    opts.blocks = 4;
    FittedProjection fit(sys, {{-1.0}, {0.0}, {1.0}}, opts);  // 3 coeffs, 3 samples
    EXPECT_LT(fit.fit_residual(), 1e-10);

    const std::vector<double> p{1.0};
    PrimaOptions popts;
    popts.blocks = 4;
    la::Matrix direct = prima_basis_at(sys, p, popts);
    la::Matrix fitted = fit.basis_at(p);
    // Same span: projectors agree.
    la::Matrix pd = la::matmul(direct, la::transpose(direct));
    la::Matrix pf = la::matmul(fitted, la::transpose(fitted));
    EXPECT_LE(la::norm_max(pd - pf), 1e-7);
}

TEST(FitProjection, AccurateBetweenSamplesOnSmoothProblem) {
    circuit::ParametricSystem sys = small_parametric_rc(40, 2, 94);
    FitProjectionOptions opts;
    opts.blocks = 5;
    FittedProjection fit(sys, cross_samples(), opts);

    const std::vector<double> p{0.5, -0.4};
    ReducedModel model = fit.model_at(sys, p);
    const la::cplx s(0.0, 0.5);
    la::ZMatrix yref = la::matmul(
        la::transpose(la::to_complex(sys.l)),
        la::solve_dense(la::pencil(sys.g_at(p).to_dense(), sys.c_at(p).to_dense(), s),
                        la::to_complex(sys.b)));
    const double err = la::norm_max(model.transfer(s, p) - yref) / la::norm_max(yref);
    EXPECT_LT(err, 5e-3);  // usable, but clearly behind multi-point expansion
}

TEST(FitProjection, FitResidualRevealsProjectionSensitivity) {
    // Section 3.3's robustness caveat, measured: on this workload the
    // sampled projection matrices are NOT a low-order polynomial in p (the
    // Krylov basis rotates with the parameters), so the entrywise fit keeps
    // a substantial residual in both alignment modes. This is the mechanism
    // behind "direct fitting less robust" vs implicit interpolation by
    // projection (multi-point expansion).
    circuit::ParametricSystem sys = small_parametric_rc(40, 2, 95);
    FitProjectionOptions aligned;
    aligned.align_signs = true;
    FitProjectionOptions unaligned;
    unaligned.align_signs = false;
    FittedProjection fa(sys, cross_samples(), aligned);
    FittedProjection fu(sys, cross_samples(), unaligned);
    EXPECT_GT(fa.fit_residual(), 1e-3);
    EXPECT_GT(fu.fit_residual(), 1e-3);
    EXPECT_LT(fa.fit_residual(), 1.0);
}

TEST(FitProjection, LinearOnlyUsesFewerCoefficients) {
    circuit::ParametricSystem sys = small_parametric_rc(20, 2, 96);
    FitProjectionOptions lin;
    lin.quadratic = false;  // 1 + np = 3 coefficients
    FittedProjection fit(sys, {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}}, lin);
    EXPECT_GE(fit.columns(), 1);
}

TEST(FitProjection, SampleDimensionValidated) {
    circuit::ParametricSystem sys = small_parametric_rc(15, 2, 97);
    EXPECT_THROW(FittedProjection(sys, {{0.0}, {1.0}, {0.5}, {0.2}, {0.7}}, {}), Error);
}

}  // namespace
}  // namespace varmor::mor
