#include <gtest/gtest.h>

#include "la/lu_dense.h"
#include "la/orth.h"
#include "mor/lowrank_pmor.h"
#include "mor/passivity.h"
#include "mor/prima.h"
#include "mor_test_utils.h"

namespace varmor::mor {
namespace {

using la::Matrix;
using varmor::testing::max_moment_mismatch;
using varmor::testing::oracle_of;
using varmor::testing::small_parametric_rc;
using varmor::testing::to_dense;

/// Builds the dense "nearby" low-rank system of Theorem 1 from the factors
/// Algorithm 1 actually computed: G~i = G0 (U S V^T)_i, C~i = G0 (U S V^T)_i.
varmor::testing::DenseSystem nearby_system(const circuit::ParametricSystem& sys,
                                           const LowRankPmorResult& result) {
    varmor::testing::DenseSystem d = to_dense(sys);
    const int np = sys.num_params();
    auto lowrank_dense = [&](const la::SvdResult& f) {
        Matrix us = f.u;
        for (int j = 0; j < us.cols(); ++j)
            for (int i = 0; i < us.rows(); ++i)
                us(i, j) *= f.s[static_cast<std::size_t>(j)];
        return la::matmul(d.g0, la::matmul(us, la::transpose(f.v)));
    };
    for (int i = 0; i < np; ++i)
        d.dg[static_cast<std::size_t>(i)] =
            lowrank_dense(result.sensitivity_factors[static_cast<std::size_t>(i)]);
    for (int i = 0; i < np; ++i)
        d.dc[static_cast<std::size_t>(i)] =
            lowrank_dense(result.sensitivity_factors[static_cast<std::size_t>(np + i)]);
    return d;
}

/// Projects a dense parametric system with basis v (congruence).
varmor::testing::DenseSystem project_dense(const varmor::testing::DenseSystem& d,
                                           const Matrix& v) {
    varmor::testing::DenseSystem r;
    auto cong = [&](const Matrix& m) { return la::matmul_transA(v, la::matmul(m, v)); };
    r.g0 = cong(d.g0);
    r.c0 = cong(d.c0);
    for (const Matrix& m : d.dg) r.dg.push_back(cong(m));
    for (const Matrix& m : d.dc) r.dc.push_back(cong(m));
    r.b = la::matmul_transA(v, d.b);
    r.l = la::matmul_transA(v, d.l);
    return r;
}

/// THEOREM 1: the reduced model obtained with Algorithm 1's projection
/// matches ALL multi-parameter moments of the nearby (low-rank) parametric
/// system up to order k — in both Full (adjoint subspaces) and Compact mode.
class Theorem1Property
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};  // (k, rank, adjoint)

TEST_P(Theorem1Property, MomentsOfNearbySystemMatched) {
    auto [k, rank, adjoint] = GetParam();
    circuit::ParametricSystem sys = small_parametric_rc(24, 2, 31);
    LowRankPmorOptions opts;
    opts.s_order = k;
    opts.param_order = k;
    opts.rank = rank;
    opts.include_adjoint = adjoint;
    LowRankPmorResult result = lowrank_pmor(sys, opts);

    varmor::testing::DenseSystem nearby = nearby_system(sys, result);
    varmor::testing::DenseSystem reduced_nearby = project_dense(nearby, result.basis);

    MomentOracle full(nearby.g0, nearby.c0, nearby.dg, nearby.dc, nearby.b, nearby.l);
    MomentOracle reduced(reduced_nearby.g0, reduced_nearby.c0, reduced_nearby.dg,
                         reduced_nearby.dc, reduced_nearby.b, reduced_nearby.l);
    EXPECT_LE(max_moment_mismatch(full, reduced, k, 2), 1e-6)
        << "k=" << k << " rank=" << rank << " adjoint=" << adjoint;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, Theorem1Property,
    ::testing::Values(std::tuple{1, 1, true}, std::tuple{2, 1, true},
                      std::tuple{3, 1, true}, std::tuple{2, 2, true},
                      std::tuple{1, 1, false}, std::tuple{2, 1, false},
                      std::tuple{3, 2, false}));

TEST(LowRankPmor, BasisOrthonormal) {
    circuit::ParametricSystem sys = small_parametric_rc(30, 2, 32);
    LowRankPmorResult r = lowrank_pmor(sys, {});
    EXPECT_LE(la::orthonormality_error(r.basis), 1e-10);
}

TEST(LowRankPmor, SizeMatchesPredictionWithoutDeflation) {
    circuit::ParametricSystem sys = small_parametric_rc(60, 2, 33);
    LowRankPmorOptions opts;
    opts.s_order = 3;
    opts.param_order = 2;
    LowRankPmorResult r = lowrank_pmor(sys, opts);
    const int predicted = lowrank_pmor_predicted_size(sys.num_ports(), 2, opts);
    EXPECT_LE(r.basis.cols(), predicted);
    EXPECT_GE(r.basis.cols(), predicted - 4);  // minor deflation tolerated
}

TEST(LowRankPmor, SingleFactorizationReported) {
    circuit::ParametricSystem sys = small_parametric_rc(25, 3, 34);
    EXPECT_EQ(lowrank_pmor(sys, {}).factorizations, 1);
}

TEST(LowRankPmor, ReducedParametricModelIsPassiveAcrossParameterSpace) {
    circuit::ParametricSystem sys = small_parametric_rc(40, 2, 35);
    LowRankPmorResult r = lowrank_pmor(sys, {});
    for (double p1 : {-0.9, 0.0, 0.9})
        for (double p2 : {-0.9, 0.9}) {
            auto report = check_passivity(r.model, {p1, p2});
            EXPECT_TRUE(report.passive()) << "p = (" << p1 << "," << p2
                                          << "), min eig " << report.min_eig_g_sym;
        }
}

TEST(LowRankPmor, BeatsNominalProjectionUnderPerturbation) {
    // The headline claim (Figs. 3-4): under parameter perturbation the
    // low-rank parametric model tracks the perturbed system while the
    // nominal-projection model does not.
    circuit::ParametricSystem sys = small_parametric_rc(60, 2, 36);
    LowRankPmorOptions opts;
    opts.s_order = 4;
    opts.param_order = 4;
    opts.rank = 2;
    LowRankPmorResult lr = lowrank_pmor(sys, opts);

    PrimaOptions popts;
    popts.blocks = 5;
    ReducedModel nominal = project(sys, prima_basis_at(sys, {0.0, 0.0}, popts));

    const std::vector<double> p{0.8, -0.8};
    const la::cplx s(0.0, 0.5);
    la::ZMatrix href = la::solve_dense(
        la::pencil(sys.g_at(p).to_dense(), sys.c_at(p).to_dense(), s),
        la::to_complex(sys.b));
    la::ZMatrix yref = la::matmul(la::transpose(la::to_complex(sys.l)), href);
    auto err = [&](const ReducedModel& m) {
        return la::norm_max(m.transfer(s, p) - yref) / la::norm_max(yref);
    };
    // The parametric model must be far more accurate than the nominal
    // projection under this large (+-0.8) perturbation, and accurate in
    // absolute terms.
    EXPECT_LT(err(lr.model), 0.25 * err(nominal));
    EXPECT_LT(err(lr.model), 5e-3);
}

TEST(LowRankPmor, GeneralizedSensitivitySpectraDecayFast) {
    // Section 4.2's empirical claim: rank-1 usually suffices, i.e. the
    // leading singular value dominates the second.
    circuit::ParametricSystem sys = small_parametric_rc(50, 2, 37);
    LowRankPmorOptions opts;
    opts.rank = 3;
    LowRankPmorResult r = lowrank_pmor(sys, opts);
    for (const auto& spectrum : r.sensitivity_spectra) {
        if (spectrum.size() < 2) continue;
        EXPECT_GT(spectrum[0], spectrum[1]);  // strictly decaying
    }
}

TEST(LowRankPmor, RandomizedEngineAgreesWithLanczos) {
    circuit::ParametricSystem sys = small_parametric_rc(40, 2, 38);
    LowRankPmorOptions lz;
    LowRankPmorOptions rnd;
    rnd.engine = LowRankPmorOptions::SvdEngine::randomized;
    LowRankPmorResult a = lowrank_pmor(sys, lz);
    LowRankPmorResult b = lowrank_pmor(sys, rnd);
    const std::vector<double> p{0.5, -0.5};
    const la::cplx s(0.0, 0.3);
    EXPECT_LE(la::norm_max(a.model.transfer(s, p) - b.model.transfer(s, p)),
              1e-4 * (1.0 + la::norm_max(a.model.transfer(s, p))));
}

TEST(LowRankPmor, RawSensitivitySpaceRuns) {
    // The ablation alternative must produce a valid (if less accurate) model.
    circuit::ParametricSystem sys = small_parametric_rc(30, 2, 39);
    LowRankPmorOptions opts;
    opts.space = LowRankPmorOptions::SensitivitySpace::raw;
    LowRankPmorResult r = lowrank_pmor(sys, opts);
    EXPECT_GE(r.basis.cols(), 1);
    EXPECT_TRUE(check_passivity(r.model, {0.0, 0.0}).passive());
}

TEST(LowRankPmor, InvalidOptionsThrow) {
    circuit::ParametricSystem sys = small_parametric_rc(10, 1, 40);
    LowRankPmorOptions bad;
    bad.rank = 0;
    EXPECT_THROW(lowrank_pmor(sys, bad), Error);
    bad = {};
    bad.param_order = 0;
    EXPECT_THROW(lowrank_pmor(sys, bad), Error);
    bad = {};
    bad.s_order = -1;
    EXPECT_THROW(lowrank_pmor(sys, bad), Error);
}

}  // namespace
}  // namespace varmor::mor
