// The PR-8 simd layer's contracts, tested at the kernel level:
//
//  - every Pack lane computes exactly the matching *_s scalar twin, so a
//    kernel's vector body and its remainder tail produce identical values
//    (the within-arm bit-identity foundation);
//  - the pointer kernels (axpy_n / fnma_n / scale_n / pencil_stamp_n /
//    zscale_real_n) are element-wise pinned to their documented per-element
//    formulas across remainder lengths n % lanes != 0;
//  - the blocked matmul / Hessenberg kernels agree with the retained *_naive
//    seed references numerically (their reduction orders differ by design);
//  - the fixed-size small-matrix LU is bitwise the generic dense LU on the
//    same padded matrix, and identity padding is exactly neutral.

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "la/dense.h"
#include "la/hessenberg.h"
#include "la/lu_dense.h"
#include "la/ops.h"
#include "la/simd.h"
#include "la/small_dense.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace varmor::la {
namespace {

using zd = std::complex<double>;

template <class T>
std::vector<T> random_values(int n, util::Rng& rng);

template <>
std::vector<double> random_values<double>(int n, util::Rng& rng) {
    std::vector<double> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = rng.uniform(-2.0, 2.0);
    return v;
}

template <>
std::vector<zd> random_values<zd>(int n, util::Rng& rng) {
    std::vector<zd> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = zd(rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0));
    return v;
}

// ---------------------------------------------------------------------------
// Pack lanes == scalar twins.
// ---------------------------------------------------------------------------

template <class T>
void expect_lanes_match_twins() {
    using P = simd::Pack<T>;
    constexpr int W = P::lanes;
    util::Rng rng(17);
    const auto a = random_values<T>(W, rng);
    const auto b = random_values<T>(W, rng);
    const auto c = random_values<T>(W, rng);
    T out[W];

    fmadd(P::load(a.data()), P::load(b.data()), P::load(c.data())).store(out);
    for (int l = 0; l < W; ++l)
        EXPECT_EQ(out[l], simd::fmadd_s(a[static_cast<std::size_t>(l)],
                                        b[static_cast<std::size_t>(l)],
                                        c[static_cast<std::size_t>(l)]))
            << "fmadd lane " << l;

    fnmadd(P::load(a.data()), P::load(b.data()), P::load(c.data())).store(out);
    for (int l = 0; l < W; ++l)
        EXPECT_EQ(out[l], simd::fnmadd_s(a[static_cast<std::size_t>(l)],
                                         b[static_cast<std::size_t>(l)],
                                         c[static_cast<std::size_t>(l)]))
            << "fnmadd lane " << l;

    mul(P::load(a.data()), P::load(b.data())).store(out);
    for (int l = 0; l < W; ++l)
        EXPECT_EQ(out[l], simd::mul_s(a[static_cast<std::size_t>(l)],
                                      b[static_cast<std::size_t>(l)]))
            << "mul lane " << l;

    add(P::load(a.data()), P::load(b.data())).store(out);
    for (int l = 0; l < W; ++l)
        EXPECT_EQ(out[l],
                  a[static_cast<std::size_t>(l)] + b[static_cast<std::size_t>(l)])
            << "add lane " << l;

    sub(P::load(a.data()), P::load(b.data())).store(out);
    for (int l = 0; l < W; ++l)
        EXPECT_EQ(out[l],
                  a[static_cast<std::size_t>(l)] - b[static_cast<std::size_t>(l)])
            << "sub lane " << l;

    P::broadcast(a[0]).store(out);
    for (int l = 0; l < W; ++l) EXPECT_EQ(out[l], a[0]) << "broadcast lane " << l;
}

TEST(SimdPack, RealLanesMatchScalarTwins) { expect_lanes_match_twins<double>(); }

TEST(SimdPack, ComplexLanesMatchScalarTwins) { expect_lanes_match_twins<zd>(); }

TEST(SimdPack, ComplexMulMatchesUnfusedTextbookFormula) {
    // mul_s promises the textbook product with every partial product rounded
    // separately. The reference is built through volatile slots so the
    // compiler cannot fuse the multiplies into the combining add/sub —
    // std::complex operator* itself is NOT a stable reference, because GCC's
    // SLP vectorizer fuses its two lanes into vfmaddsub in some inlining
    // contexts even under -ffp-contract=off (the very reason mul_s is pinned
    // with explicit intrinsics on the AVX2 arm).
    util::Rng rng(19);
    for (int t = 0; t < 50; ++t) {
        const zd a(rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0));
        const zd b(rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0));
        volatile double arbr = a.real() * b.real();
        volatile double aibi = a.imag() * b.imag();
        volatile double aibr = a.imag() * b.real();
        volatile double arbi = a.real() * b.imag();
        EXPECT_EQ(simd::mul_s(a, b), zd(arbr - aibi, aibr + arbi));
        // And numerically the std::complex product is the same quantity.
        const zd d = simd::mul_s(a, b) - a * b;
        EXPECT_LE(std::abs(d), 1e-15 * std::abs(a * b));
    }
}

// ---------------------------------------------------------------------------
// Pointer kernels: per-element pins over remainder lengths.
// ---------------------------------------------------------------------------

template <class T>
void expect_axpy_fnma_scale_pins() {
    util::Rng rng(23);
    for (int n : {1, 2, 3, 4, 5, 6, 7, 8, 9, 17}) {
        const auto x = random_values<T>(n, rng);
        const auto y0 = random_values<T>(n, rng);
        const T a = random_values<T>(1, rng)[0];

        auto y = y0;
        simd::axpy_n(n, a, x.data(), y.data());
        for (int i = 0; i < n; ++i)
            EXPECT_EQ(y[static_cast<std::size_t>(i)],
                      simd::fmadd_s(a, x[static_cast<std::size_t>(i)],
                                    y0[static_cast<std::size_t>(i)]))
                << "axpy_n n=" << n << " i=" << i;

        y = y0;
        simd::fnma_n(n, a, x.data(), y.data());
        for (int i = 0; i < n; ++i)
            EXPECT_EQ(y[static_cast<std::size_t>(i)],
                      simd::fnmadd_s(a, x[static_cast<std::size_t>(i)],
                                     y0[static_cast<std::size_t>(i)]))
                << "fnma_n n=" << n << " i=" << i;

        y = y0;
        simd::scale_n(n, a, y.data());
        for (int i = 0; i < n; ++i)
            EXPECT_EQ(y[static_cast<std::size_t>(i)],
                      simd::mul_s(a, y0[static_cast<std::size_t>(i)]))
                << "scale_n n=" << n << " i=" << i;
    }
}

TEST(SimdKernels, RealAxpyFnmaScaleElementwisePins) {
    expect_axpy_fnma_scale_pins<double>();
}

TEST(SimdKernels, ComplexAxpyFnmaScaleElementwisePins) {
    expect_axpy_fnma_scale_pins<zd>();
}

template <class T>
void expect_dot_matches_plain_sum() {
    util::Rng rng(29);
    for (int n : {1, 2, 3, 4, 5, 6, 7, 8, 9, 17, 31, 64}) {
        const auto x = random_values<T>(n, rng);
        const auto y = random_values<T>(n, rng);
        T plain{};
        for (int i = 0; i < n; ++i)
            plain += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
        const double tol = 1e-13 * (1.0 + std::abs(plain));
        EXPECT_NEAR(std::abs(simd::dot_n(n, x.data(), y.data()) - plain), 0.0, tol)
            << "dot_n n=" << n;
        EXPECT_NEAR(std::abs(simd::dot1_n(n, x.data(), y.data()) - plain), 0.0, tol)
            << "dot1_n n=" << n;
    }
}

TEST(SimdKernels, RealDotMatchesPlainSum) { expect_dot_matches_plain_sum<double>(); }

TEST(SimdKernels, ComplexDotMatchesPlainSum) { expect_dot_matches_plain_sum<zd>(); }

TEST(SimdKernels, PencilStampMatchesPerElementFormula) {
    util::Rng rng(31);
    const zd s(rng.uniform(-1.0, 1.0), rng.uniform(1.0, 2.0));
    for (int n : {1, 3, 4, 5, 8, 11}) {
        const auto g = random_values<double>(n, rng);
        const auto c = random_values<double>(n, rng);
        std::vector<zd> out(static_cast<std::size_t>(n));
        simd::pencil_stamp_n(n, s, g.data(), c.data(), out.data());
        for (int i = 0; i < n; ++i) {
            const auto gi = g[static_cast<std::size_t>(i)];
            const auto ci = c[static_cast<std::size_t>(i)];
            EXPECT_EQ(out[static_cast<std::size_t>(i)],
                      zd(simd::fmadd_s(s.real(), ci, gi), s.imag() * ci))
                << "pencil_stamp_n n=" << n << " i=" << i;
        }
    }
}

TEST(SimdKernels, ZscaleRealMatchesPlainProducts) {
    util::Rng rng(37);
    const zd s(rng.uniform(-1.0, 1.0), rng.uniform(1.0, 2.0));
    for (int n : {1, 2, 3, 4, 5, 9}) {
        const auto h = random_values<double>(n, rng);
        std::vector<zd> out(static_cast<std::size_t>(n));
        simd::zscale_real_n(n, s, h.data(), out.data());
        for (int i = 0; i < n; ++i) {
            const auto hi = h[static_cast<std::size_t>(i)];
            EXPECT_EQ(out[static_cast<std::size_t>(i)], zd(s.real() * hi, s.imag() * hi))
                << "zscale_real_n n=" << n << " i=" << i;
        }
    }
}

TEST(SimdKernels, DivSmithMatchesOperatorNumerically) {
    util::Rng rng(41);
    for (int t = 0; t < 100; ++t) {
        const zd a(rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0));
        zd b(rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0));
        if (std::abs(b) < 1e-3) b += zd(1.0, 0.0);
        const zd q = simd::div_s(a, b);
        EXPECT_LE(std::abs(q - a / b), 1e-14 * (1.0 + std::abs(a / b)));
    }
    EXPECT_EQ(simd::abs1(zd(0.0, 0.0)), 0.0);
    EXPECT_GT(simd::abs1(zd(0.0, -1e-300)), 0.0);
}

// ---------------------------------------------------------------------------
// Blocked dense kernels vs the retained naive seed references.
// ---------------------------------------------------------------------------

TEST(SimdMatmul, RealMatchesNaiveOnOddAndRectangularShapes) {
    util::Rng rng(43);
    const int shapes[][3] = {{1, 1, 1}, {2, 3, 1}, {5, 7, 3}, {9, 4, 6},
                             {6, 6, 5}, {13, 13, 13}, {17, 11, 9}};
    for (const auto& s : shapes) {
        const Matrix a = testing::random_matrix(s[0], s[1], rng);
        const Matrix b = testing::random_matrix(s[1], s[2], rng);
        testing::expect_near(matmul(a, b), matmul_naive(a, b), 1e-12);
    }
}

TEST(SimdMatmul, ComplexMatchesNaiveOnOddAndRectangularShapes) {
    util::Rng rng(47);
    const int shapes[][3] = {{1, 1, 1}, {2, 3, 1}, {5, 7, 3}, {9, 4, 6}, {13, 13, 13}};
    for (const auto& s : shapes) {
        const ZMatrix a = testing::random_zmatrix(s[0], s[1], rng);
        const ZMatrix b = testing::random_zmatrix(s[1], s[2], rng);
        testing::expect_near(matmul(a, b), matmul_naive(a, b), 1e-12);
    }
}

TEST(SimdMatmul, TransARealAndComplexMatchNaive) {
    util::Rng rng(53);
    const Matrix a = testing::random_matrix(11, 9, rng);
    const Matrix b = testing::random_matrix(11, 7, rng);
    testing::expect_near(matmul_transA(a, b), matmul_transA_naive(a, b), 1e-12);
    const ZMatrix az = testing::random_zmatrix(10, 5, rng);
    const ZMatrix bz = testing::random_zmatrix(10, 6, rng);
    testing::expect_near(matmul_transA(az, bz), matmul_transA_naive(az, bz), 1e-12);
}

TEST(SimdMatmul, TransAEntriesIndependentOfTilePosition) {
    // The documented gemm_transA invariant: every c(i, j) — register tile,
    // edge column, or remainder — reduces in the dot1_n order, so it is a
    // function of the two columns and the row count only. 9 x 7 forces the
    // i-remainder (9 = 4 pairs + 1) and the j-remainder (7 = 4 + 3).
    util::Rng rng(59);
    const Matrix a = testing::random_matrix(13, 9, rng);
    const Matrix b = testing::random_matrix(13, 7, rng);
    const Matrix c = matmul_transA(a, b);
    for (int i = 0; i < 9; ++i)
        for (int j = 0; j < 7; ++j)
            EXPECT_EQ(c(i, j), simd::dot1_n(13, a.col_data(i), b.col_data(j)))
                << i << "," << j;
}

// ---------------------------------------------------------------------------
// Hessenberg kernels vs the retained naive references.
// ---------------------------------------------------------------------------

TEST(SimdHessenberg, ReductionMatchesNaiveAndReconstructs) {
    util::Rng rng(61);
    for (int n : {1, 2, 3, 5, 13, 20}) {
        const Matrix a = testing::random_matrix(n, n, rng);
        Matrix h = a, q;
        std::vector<double> v;
        hessenberg_with_q(h, q, v);

        Matrix hn = a, qn;
        std::vector<double> vn;
        hessenberg_with_q_naive(hn, qn, vn);
        testing::expect_near(h, hn, 1e-11);
        testing::expect_near(q, qn, 1e-11);

        // Orthogonality and reconstruction a = q h q^T.
        Matrix qtq = matmul_transA(q, q);
        for (int i = 0; i < n; ++i) qtq(i, i) -= 1.0;
        EXPECT_LE(norm_max(qtq), 1e-12) << "n=" << n;
        testing::expect_near(matmul(q, matmul(h, transpose(q))), a, 1e-11);

        // Upper Hessenberg: exact zeros below the first subdiagonal.
        for (int j = 0; j < n; ++j)
            for (int i = j + 2; i < n; ++i) EXPECT_EQ(h(i, j), 0.0) << i << "," << j;
    }
}

TEST(SimdHessenberg, TransposedSolveMatchesNaive) {
    util::Rng rng(67);
    for (int n : {1, 2, 3, 5, 19, 20, 21, 60}) {
        // A well-conditioned upper Hessenberg system I + sH.
        Matrix hband(n, n);
        hband.fill(0.0);
        for (int j = 0; j < n; ++j)
            for (int i = 0; i <= std::min(j + 1, n - 1); ++i)
                hband(i, j) = rng.uniform(-1.0, 1.0);
        const cplx s(0.4, 1.3);
        ZMatrix m(n, n), mt(n, n);
        m.fill(cplx{});
        mt.fill(cplx{});
        for (int j = 0; j < n; ++j)
            for (int i = 0; i <= std::min(j + 1, n - 1); ++i) {
                const cplx e = s * hband(i, j) + (i == j ? 1.0 : 0.0);
                m(i, j) = e;
                mt(j, i) = e;
            }
        const ZMatrix r = testing::random_zmatrix(n, 3, rng);

        ZMatrix m1 = m, x1 = r;
        hessenberg_solve_naive(m1, x1);
        ZMatrix mt2 = mt, x2 = r;
        hessenberg_solve_t(mt2, x2);
        // Numerical agreement only: the transposed solve ranks pivots by
        // abs1 (|re| + |im|) where the naive solve uses std::abs, so the two
        // can take different row swaps and accumulate different roundoff.
        testing::expect_near(x2, x1, 1e-8);

        // Residual against the unfactored matrix.
        testing::expect_near(matmul(m, x2), r, 1e-8);
    }
}

TEST(SimdHessenberg, TransposedSolveThrowsOnSingular) {
    ZMatrix mt(2, 2);
    mt.fill(cplx{});
    ZMatrix x(2, 1);
    x.fill(cplx(1.0, 0.0));
    EXPECT_THROW(hessenberg_solve_t(mt, x), Error);
}

// ---------------------------------------------------------------------------
// Fixed-size small-matrix LU.
// ---------------------------------------------------------------------------

TEST(SmallLu, PaddedSizeAndDispatchBoundaries) {
    EXPECT_EQ(small_padded_size(1), 4);
    EXPECT_EQ(small_padded_size(4), 4);
    EXPECT_EQ(small_padded_size(5), 8);
    EXPECT_EQ(small_padded_size(19), 20);
    EXPECT_EQ(small_padded_size(20), 20);
    EXPECT_EQ(small_padded_size(21), 24);
    int hit = 0;
    EXPECT_TRUE(small_lu_dispatch(7, [&](auto n) { hit = decltype(n)::value; }));
    EXPECT_EQ(hit, 8);
    EXPECT_TRUE(small_lu_dispatch(20, [&](auto n) { hit = decltype(n)::value; }));
    EXPECT_EQ(hit, 20);
    EXPECT_FALSE(small_lu_dispatch(21, [&](auto) { hit = -1; }));
    EXPECT_EQ(hit, 20);  // f not invoked past the fixed-size range
}

TEST(SmallLu, FactorAndSubstituteBitwiseMatchGenericDenseLu) {
    // On the same N x N matrix the fixed-size kernel must be the generic
    // kernel: same pivot scan, same divisions, same update semantics.
    util::Rng rng(71);
    for (int reps = 0; reps < 3; ++reps) {
        ZMatrix a = testing::random_zmatrix(12, 12, rng);
        for (int i = 0; i < 12; ++i) a(i, i) += 3.0;

        ZMatrix generic = a;
        std::vector<int> gperm;
        detail::lu_factor_inplace(generic, gperm);

        std::vector<cplx> fixed(a.raw().begin(), a.raw().end());
        int fperm[12];
        small_lu_factor<12>(fixed.data(), fperm);

        for (int j = 0; j < 12; ++j)
            for (int i = 0; i < 12; ++i)
                EXPECT_EQ(fixed[static_cast<std::size_t>(j) * 12 +
                                static_cast<std::size_t>(i)],
                          generic(i, j))
                    << i << "," << j;
        for (int i = 0; i < 12; ++i)
            EXPECT_EQ(fperm[i], gperm[static_cast<std::size_t>(i)]) << "perm " << i;

        const ZMatrix b = testing::random_zmatrix(12, 2, rng);
        ZMatrix xg(12, 2);
        std::vector<cplx> xf(24);
        for (int r = 0; r < 2; ++r)
            for (int i = 0; i < 12; ++i) {
                const cplx v = b(gperm[static_cast<std::size_t>(i)], r);
                xg(i, r) = v;
                xf[static_cast<std::size_t>(r) * 12 + static_cast<std::size_t>(i)] = v;
            }
        detail::lu_substitute_inplace(generic, xg.raw().data(), 2);
        small_lu_substitute<12>(fixed.data(), xf.data(), 2);
        for (int r = 0; r < 2; ++r)
            for (int i = 0; i < 12; ++i)
                EXPECT_EQ(xf[static_cast<std::size_t>(r) * 12 +
                             static_cast<std::size_t>(i)],
                          xg(i, r))
                    << i << "," << r;
    }
}

TEST(SmallLu, IdentityPaddingIsExactlyNeutral) {
    // Solving the identity-padded system and the bare q x q system must give
    // the SAME top q rows, bit for bit: the padded rows hold exact zeros in
    // the first q columns, the strict > pivot scan never selects them, and
    // zero right-hand-side padding stays zero through both substitutions.
    util::Rng rng(73);
    const int q = 7, N = 8, m = 2;
    ZMatrix k = testing::random_zmatrix(q, q, rng);
    for (int i = 0; i < q; ++i) k(i, i) += 3.0;
    const ZMatrix b = testing::random_zmatrix(q, m, rng);

    // Bare system through the generic kernels.
    ZMatrix bare = k;
    std::vector<int> bperm;
    detail::lu_factor_inplace(bare, bperm);
    ZMatrix xb(q, m);
    for (int r = 0; r < m; ++r)
        for (int i = 0; i < q; ++i)
            xb(i, r) = b(bperm[static_cast<std::size_t>(i)], r);
    detail::lu_substitute_inplace(bare, xb.raw().data(), m);

    // Identity-padded system through the fixed-size lane.
    std::vector<cplx> pad(static_cast<std::size_t>(N) * N, cplx{});
    for (int j = 0; j < q; ++j)
        for (int i = 0; i < q; ++i)
            pad[static_cast<std::size_t>(j) * N + static_cast<std::size_t>(i)] = k(i, j);
    for (int j = q; j < N; ++j)
        pad[static_cast<std::size_t>(j) * N + static_cast<std::size_t>(j)] = cplx(1.0, 0.0);
    int perm[N];
    small_lu_factor<N>(pad.data(), perm);

    // The permutation stays confined: [0, q) -> [0, q), identity on [q, N).
    for (int i = 0; i < q; ++i) {
        EXPECT_LT(perm[i], q) << i;
        EXPECT_EQ(perm[i], bperm[static_cast<std::size_t>(i)]) << i;
    }
    for (int i = q; i < N; ++i) EXPECT_EQ(perm[i], i);

    std::vector<cplx> xp(static_cast<std::size_t>(N) * m, cplx{});
    for (int r = 0; r < m; ++r)
        for (int i = 0; i < N; ++i) {
            const int pi = perm[i];
            xp[static_cast<std::size_t>(r) * N + static_cast<std::size_t>(i)] =
                pi < q ? b(pi, r) : cplx{};
        }
    small_lu_substitute<N>(pad.data(), xp.data(), m);
    for (int r = 0; r < m; ++r)
        for (int i = 0; i < q; ++i)
            EXPECT_EQ(xp[static_cast<std::size_t>(r) * N + static_cast<std::size_t>(i)],
                      xb(i, r))
                << i << "," << r;
}

}  // namespace
}  // namespace varmor::la
