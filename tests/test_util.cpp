#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace varmor {
namespace {

TEST(Check, ThrowsWithMessage) {
    try {
        check(false, "the message");
        FAIL() << "expected throw";
    } catch (const Error& e) {
        EXPECT_STREQ(e.what(), "the message");
    }
    EXPECT_NO_THROW(check(true, "unused"));
}

TEST(Rng, DeterministicAcrossInstances) {
    util::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
    util::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform() == b.uniform()) ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformBounds) {
    util::Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-2.0, 5.0);
        EXPECT_GE(x, -2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, NormalMomentsApproximate) {
    util::Rng rng(4);
    double mean = 0, var = 0;
    const int n = 20000;
    std::vector<double> xs;
    for (int i = 0; i < n; ++i) xs.push_back(rng.normal(3.0, 2.0));
    for (double x : xs) mean += x;
    mean /= n;
    for (double x : xs) var += (x - mean) * (x - mean);
    var /= n;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
    util::Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.truncated_normal(0.0, 1.0, -0.5, 0.5);
        EXPECT_GE(x, -0.5);
        EXPECT_LE(x, 0.5);
    }
    EXPECT_THROW(rng.truncated_normal(0, 1, 1.0, -1.0), Error);
}

TEST(Rng, TruncatedNormalPathologicalIntervalClamps) {
    util::Rng rng(6);
    // Interval 50 sigma into the tail: resampling cannot hit it; clamp.
    const double x = rng.truncated_normal(0.0, 1.0, 50.0, 51.0);
    EXPECT_GE(x, 50.0);
    EXPECT_LE(x, 51.0);
}

TEST(Rng, BelowInRange) {
    util::Rng rng(7);
    std::vector<int> seen(5, 0);
    for (int i = 0; i < 1000; ++i) {
        const int k = rng.below(5);
        ASSERT_GE(k, 0);
        ASSERT_LT(k, 5);
        ++seen[static_cast<std::size_t>(k)];
    }
    for (int count : seen) EXPECT_GT(count, 100);  // roughly uniform
}

TEST(Table, PrintAlignsColumns) {
    util::Table t({"name", "value"});
    t.add_row({"x", "1"});
    t.add_row({"longer", "2.5"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_EQ(t.rows(), 2);
    EXPECT_EQ(t.cols(), 2);
}

TEST(Table, RowArityEnforced) {
    util::Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), Error);
    EXPECT_THROW(util::Table({}), Error);
}

TEST(Table, NumFormatsPrecision) {
    EXPECT_EQ(util::Table::num(1.0, 3), "1");
    EXPECT_EQ(util::Table::num(0.125, 3), "0.125");
    EXPECT_EQ(util::Table::num(1234567.0, 3), "1.23e+06");
}

TEST(Table, CsvRoundTrip) {
    util::Table t({"h1", "h2"});
    t.add_row({"a", "b"});
    const std::string path = ::testing::TempDir() + "/varmor_table.csv";
    t.write_csv(path);
    std::ifstream f(path);
    std::string line;
    std::getline(f, line);
    EXPECT_EQ(line, "h1,h2");
    std::getline(f, line);
    EXPECT_EQ(line, "a,b");
    EXPECT_THROW(t.write_csv("/nonexistent/dir/x.csv"), Error);
}

TEST(Timer, MeasuresElapsedTime) {
    util::Timer t;
    // Busy-wait a tiny amount.
    volatile double acc = 0;
    for (int i = 0; i < 100000; ++i) acc += std::sqrt(static_cast<double>(i));
    EXPECT_GE(t.seconds(), 0.0);
    EXPECT_EQ(t.milliseconds() >= t.seconds() * 1000.0 * 0.99, true);
    const double before = t.seconds();
    t.reset();
    EXPECT_LE(t.seconds(), before + 1.0);
}

}  // namespace
}  // namespace varmor
