#include <gtest/gtest.h>

#include "la/lu_dense.h"
#include "la/orth.h"
#include "mor/multi_point.h"
#include "mor/reduced_model.h"
#include "mor_test_utils.h"

namespace varmor::mor {
namespace {

using varmor::testing::max_moment_mismatch;
using varmor::testing::oracle_of;
using varmor::testing::small_parametric_rc;

TEST(GridSamples, FullFactorial) {
    auto grid = grid_samples(2, {-1.0, 0.0, 1.0});
    EXPECT_EQ(grid.size(), 9u);  // 3^2
    auto grid4 = grid_samples(4, {-1.0, 0.0, 1.0});
    EXPECT_EQ(grid4.size(), 81u);  // the "81 sample points" of section 4
    EXPECT_EQ(grid4[0].size(), 4u);
}

TEST(GridSamples, SingleLevel) {
    auto grid = grid_samples(3, {0.5});
    ASSERT_EQ(grid.size(), 1u);
    EXPECT_EQ(grid[0], (std::vector<double>{0.5, 0.5, 0.5}));
}

/// Section 3.3's property: at each sample point p^, the reduced model
/// matches the first k moments of s of the full model evaluated at p^.
class MultiPointMomentProperty : public ::testing::TestWithParam<int> {};

TEST_P(MultiPointMomentProperty, MatchesSMomentsAtEverySample) {
    const int blocks = GetParam();
    circuit::ParametricSystem sys = small_parametric_rc(22, 2, 21);
    const std::vector<std::vector<double>> samples =
        grid_samples(2, {-0.8, 0.8});  // 4 corners
    MultiPointOptions opts;
    opts.blocks_per_sample = blocks;
    MultiPointResult r = multi_point_basis(sys, samples, opts);
    EXPECT_EQ(r.factorizations, 4);

    ReducedModel red = project(sys, r.basis);
    for (const auto& p : samples) {
        // Full system frozen at p (no parameters) vs reduced frozen at p.
        MomentOracle full(sys.g_at(p).to_dense(), sys.c_at(p).to_dense(), {}, {}, sys.b,
                          sys.l);
        MomentOracle reduced(red.g_at(p), red.c_at(p), {}, {}, red.b, red.l);
        EXPECT_LE(max_moment_mismatch(full, reduced, blocks - 1, 0), 1e-7)
            << "sample (" << p[0] << ", " << p[1] << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Blocks, MultiPointMomentProperty, ::testing::Values(1, 2, 4));

TEST(MultiPoint, BasisOrthonormalAndDeduplicated) {
    circuit::ParametricSystem sys = small_parametric_rc(18, 1, 22);
    // Duplicate samples must not double the basis.
    MultiPointOptions opts;
    opts.blocks_per_sample = 3;
    MultiPointResult once = multi_point_basis(sys, {{0.5}}, opts);
    MultiPointResult twice = multi_point_basis(sys, {{0.5}, {0.5}}, opts);
    EXPECT_EQ(once.basis.cols(), twice.basis.cols());
    EXPECT_LE(la::orthonormality_error(twice.basis), 1e-10);
}

TEST(MultiPoint, InterpolatesBetweenSamples) {
    // Accuracy at a point BETWEEN samples must beat the nominal-only PRIMA
    // basis of equal block count when the system varies with p.
    circuit::ParametricSystem sys = small_parametric_rc(40, 1, 23);
    MultiPointOptions opts;
    opts.blocks_per_sample = 4;
    MultiPointResult mp = multi_point_basis(sys, {{-0.9}, {0.0}, {0.9}}, opts);
    ReducedModel red_mp = project(sys, mp.basis);

    PrimaOptions popts;
    popts.blocks = 4;
    ReducedModel red_nom = project(sys, prima_basis_at(sys, {0.0}, popts));

    const std::vector<double> p{0.5};
    const la::cplx s(0.0, 0.8);
    // Reference: dense solve of the full perturbed system.
    la::ZMatrix href = la::solve_dense(
        la::pencil(sys.g_at(p).to_dense(), sys.c_at(p).to_dense(), s), la::to_complex(sys.b));
    la::ZMatrix yref = la::matmul(la::transpose(la::to_complex(sys.l)), href);

    auto err = [&](const ReducedModel& m) {
        la::ZMatrix y = m.transfer(s, p);
        return la::norm_max(y - yref) / la::norm_max(yref);
    };
    EXPECT_LT(err(red_mp), err(red_nom));
    EXPECT_LT(err(red_mp), 1e-3);
}

TEST(MultiPoint, SampleDimensionValidated) {
    circuit::ParametricSystem sys = small_parametric_rc(10, 2, 24);
    EXPECT_THROW(multi_point_basis(sys, {{0.5}}, {}), Error);  // wrong length
    EXPECT_THROW(multi_point_basis(sys, {}, {}), Error);       // empty
}

}  // namespace
}  // namespace varmor::mor
