// service::StudyService — the serving subsystem end to end. Pinned here:
// a mixed workload (transfer sweeps + transient delays + pole queries) from
// 8 concurrent simulated clients is bitwise identical to unbatched single-
// client serving at any execution thread count; a warm ModelCache hit opens
// a session with ZERO reduction work (builds counter flat, in-process and
// through the disk tier); delay semantics agree with the standalone
// transient_study() experiment.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "analysis/transient_batch.h"
#include "mor/model_io.h"
#include "mor_test_utils.h"
#include "service/study_service.h"
#include "util/constants.h"

namespace varmor::service {
namespace {

using la::cplx;
using la::ZMatrix;
using varmor::testing::small_parametric_rc;

circuit::ParametricSystem test_system() { return small_parametric_rc(36, 2, 55); }

StudyServiceOptions service_options(int exec_threads) {
    StudyServiceOptions opts;
    opts.reduction.s_order = 3;
    opts.reduction.param_order = 2;
    opts.transient.transient.t_stop = 10.0;
    opts.transient.transient.dt = 0.5;
    opts.batcher.max_batch = 24;
    opts.batcher.max_wait_ms = 10.0;
    opts.batcher.threads = exec_threads;
    return opts;
}

void expect_bit_identical(const ZMatrix& a, const ZMatrix& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t k = 0; k < a.raw().size(); ++k) {
        EXPECT_EQ(a.raw()[k].real(), b.raw()[k].real());
        EXPECT_EQ(a.raw()[k].imag(), b.raw()[k].imag());
    }
}

TEST(StudyService, MixedEightClientWorkloadBitIdenticalToUnbatched) {
    const circuit::ParametricSystem sys = test_system();
    const int kClients = 8;
    const int kFreqs = 5;
    const auto s_of = [](int j) { return cplx(0.0, util::two_pi_f(0.02 + 0.03 * j)); };
    const auto corner_of = [](int c) {
        return std::vector<double>{0.04 * c - 0.15, -0.03 * c + 0.1};
    };

    for (int exec_threads : {1, 0}) {
        ModelCache cache;
        StudyService service(cache, service_options(exec_threads));
        StudySession& session = service.open(sys);

        // Unbatched single-client references, computed up front.
        std::vector<std::vector<ZMatrix>> ref_transfer(kClients);
        std::vector<DelayResult> ref_delay;
        std::vector<std::vector<cplx>> ref_poles;
        for (int c = 0; c < kClients; ++c) {
            for (int j = 0; j < kFreqs; ++j)
                ref_transfer[static_cast<std::size_t>(c)].push_back(
                    session.transfer_now(corner_of(c), s_of(j)));
            ref_delay.push_back(session.delay_now(corner_of(c)));
            ref_poles.push_back(session.poles_now(corner_of(c)));
        }

        // The mixed workload: every client submits a small transfer sweep,
        // one delay query, and one pole query, concurrently.
        std::vector<std::vector<Future<ZMatrix>>> tf(kClients);
        std::vector<Future<DelayResult>> df(kClients);
        std::vector<Future<std::vector<cplx>>> pf(kClients);
        std::vector<std::thread> clients;
        for (int c = 0; c < kClients; ++c)
            clients.emplace_back([&, c] {
                for (int j = 0; j < kFreqs; ++j)
                    tf[c].push_back(session.transfer(corner_of(c), s_of(j)));
                df[c] = session.delay(corner_of(c));
                pf[c] = session.poles(corner_of(c));
            });
        for (std::thread& t : clients) t.join();

        for (int c = 0; c < kClients; ++c) {
            for (int j = 0; j < kFreqs; ++j)
                expect_bit_identical(tf[c][static_cast<std::size_t>(j)].get(),
                                     ref_transfer[c][static_cast<std::size_t>(j)]);
            const DelayResult d = df[static_cast<std::size_t>(c)].get();
            EXPECT_EQ(d.delay.has_value(), ref_delay[static_cast<std::size_t>(c)].delay.has_value());
            if (d.delay) EXPECT_EQ(*d.delay, *ref_delay[static_cast<std::size_t>(c)].delay);
            EXPECT_EQ(d.level, session.delay_level());
            const auto poles = pf[static_cast<std::size_t>(c)].get();
            const auto& rp = ref_poles[static_cast<std::size_t>(c)];
            ASSERT_EQ(poles.size(), rp.size());
            for (std::size_t k = 0; k < poles.size(); ++k) {
                EXPECT_EQ(poles[k].real(), rp[k].real());
                EXPECT_EQ(poles[k].imag(), rp[k].imag());
            }
        }
        EXPECT_EQ(session.batcher().stats().queries, kClients * (kFreqs + 2));
    }
}

TEST(StudyService, WarmCacheHitOpensSessionWithZeroReductionWork) {
    const circuit::ParametricSystem sys = test_system();
    ModelCache cache;

    StudyService first(cache, service_options(1));
    StudySession& s1 = first.open(sys);
    EXPECT_EQ(cache.stats().builds, 1);

    // Same service: open() of the same system returns the SAME session.
    EXPECT_EQ(&first.open(sys), &s1);
    EXPECT_EQ(first.num_sessions(), 1);
    EXPECT_EQ(cache.stats().builds, 1);

    // A second service on the shared cache: new session, ZERO reduction work
    // (the cached model is reused), and bitwise the same served model.
    StudyService second(cache, service_options(1));
    StudySession& s2 = second.open(sys);
    EXPECT_EQ(cache.stats().builds, 1);
    EXPECT_GE(cache.stats().memory_hits, 1);
    EXPECT_EQ(mor::model_content_hash(s1.study().cached_rom()),
              mor::model_content_hash(s2.study().cached_rom()));

    // And both sessions answer identically.
    const std::vector<double> p{0.1, -0.05};
    const cplx s(0.0, 1.0);
    expect_bit_identical(s1.transfer_now(p, s), s2.transfer_now(p, s));
    EXPECT_EQ(s1.delay_level(), s2.delay_level());
}

TEST(StudyService, DiskTierServesAcrossServiceInstances) {
    const circuit::ParametricSystem sys = test_system();
    ModelCacheOptions copts;
    copts.disk_dir = ::testing::TempDir() + "/varmor_service_disk";
    // The disk tier persists across processes by design; start this run cold.
    std::filesystem::remove_all(copts.disk_dir);
    ModelCache cache(copts);

    std::uint64_t hash1 = 0;
    {
        StudyService service(cache, service_options(1));
        hash1 = mor::model_content_hash(service.open(sys).study().cached_rom());
        EXPECT_EQ(cache.stats().builds, 1);
    }
    // Simulate a cold process: memory tier gone, disk tier warm.
    cache.evict_memory();
    {
        StudyService service(cache, service_options(1));
        StudySession& session = service.open(sys);
        EXPECT_EQ(cache.stats().builds, 1);    // no reduction re-run
        EXPECT_GE(cache.stats().disk_hits, 1); // served from disk
        EXPECT_EQ(mor::model_content_hash(session.study().cached_rom()), hash1);
    }
}

TEST(StudyService, ConcurrentOpensOfOneSystemCoalesceOntoOneSession) {
    const circuit::ParametricSystem sys = test_system();
    ModelCache cache;
    StudyService service(cache, service_options(1));

    std::vector<StudySession*> sessions(6, nullptr);
    std::vector<std::thread> openers;
    for (std::size_t t = 0; t < sessions.size(); ++t)
        openers.emplace_back([&, t] { sessions[t] = &service.open(sys); });
    for (std::thread& th : openers) th.join();

    EXPECT_EQ(service.num_sessions(), 1);
    EXPECT_EQ(cache.stats().builds, 1);
    for (StudySession* s : sessions) EXPECT_EQ(s, sessions[0]);
}

TEST(StudyService, DelaySemanticsMatchStandaloneTransientStudy) {
    const circuit::ParametricSystem sys = test_system();
    const std::vector<std::vector<double>> corners{
        {0.0, 0.0}, {0.2, -0.1}, {-0.15, 0.12}, {0.1, 0.1}};

    const StudyServiceOptions opts = service_options(1);
    analysis::TransientStudyOptions sopts = opts.transient;
    const analysis::TransientStudy study = analysis::transient_study(sys, corners, sopts);

    ModelCache cache;
    StudyService service(cache, opts);
    StudySession& session = service.open(sys);
    EXPECT_EQ(session.delay_level(), study.level);
    for (std::size_t i = 0; i < corners.size(); ++i) {
        const DelayResult d = session.delay_now(corners[i]);
        EXPECT_EQ(d.delay.has_value(), study.delays[i].has_value());
        if (d.delay) EXPECT_EQ(*d.delay, *study.delays[i]);
    }
}

}  // namespace
}  // namespace varmor::service
