#include <gtest/gtest.h>

#include "la/lu_dense.h"
#include "la/orth.h"
#include "mor/reduced_model.h"
#include "mor_test_utils.h"
#include "test_helpers.h"

namespace varmor::mor {
namespace {

using la::cplx;
using la::Matrix;
using varmor::testing::small_parametric_rc;

TEST(ReducedModel, IdentityProjectionReproducesFullTransfer) {
    circuit::ParametricSystem sys = small_parametric_rc(12, 2, 51);
    ReducedModel red = project(sys, Matrix::identity(sys.size()));
    const std::vector<double> p{0.3, -0.4};
    const cplx s(0.0, 0.7);
    la::ZMatrix yfull = la::matmul(
        la::transpose(la::to_complex(sys.l)),
        la::solve_dense(la::pencil(sys.g_at(p).to_dense(), sys.c_at(p).to_dense(), s),
                        la::to_complex(sys.b)));
    EXPECT_LE(la::norm_max(red.transfer(s, p) - yfull), 1e-10 * la::norm_max(yfull));
}

TEST(ReducedModel, SingleRcPoleAnalytic) {
    // One node: conductance g to ground, cap c to ground -> pole at -g/c.
    circuit::Netlist net;
    const int a = net.add_node();
    net.add_resistor(a, 0, 2.0);      // g = 0.5
    net.add_capacitor(a, 0, 0.25);    // c = 0.25
    net.add_port(a);
    circuit::ParametricSystem sys = assemble_mna(net);
    ReducedModel red = project(sys, Matrix::identity(1));
    auto poles = red.poles({});
    ASSERT_EQ(poles.size(), 1u);
    EXPECT_NEAR(poles[0].real(), -2.0, 1e-12);  // -g/c = -0.5/0.25
    EXPECT_NEAR(poles[0].imag(), 0.0, 1e-12);

    // Transfer function H(s) = 1/(g + s c): check at s = j.
    const cplx s(0.0, 1.0);
    const cplx expected = 1.0 / (0.5 + s * 0.25);
    EXPECT_LE(std::abs(red.transfer(s, {})(0, 0) - expected), 1e-12);
}

TEST(ReducedModel, PolesSortedByDominance) {
    circuit::ParametricSystem sys = small_parametric_rc(15, 0, 52, 1);
    ReducedModel red = project(sys, Matrix::identity(sys.size()));
    auto poles = red.poles({});
    for (std::size_t i = 0; i + 1 < poles.size(); ++i)
        EXPECT_LE(std::abs(poles[i]), std::abs(poles[i + 1]) * (1 + 1e-12));
}

TEST(ReducedModel, RcPolesAreNegativeReal) {
    circuit::ParametricSystem sys = small_parametric_rc(20, 0, 53, 1);
    ReducedModel red = project(sys, Matrix::identity(sys.size()));
    for (const cplx& pole : red.poles({})) {
        EXPECT_LT(pole.real(), 0.0);
        EXPECT_NEAR(pole.imag(), 0.0, 1e-8 * std::abs(pole));
    }
}

TEST(ReducedModel, ParametricAssemblyCommutesWithProjection) {
    // V^T G(p) V == (V^T G0 V) + sum p_i (V^T Gi V).
    circuit::ParametricSystem sys = small_parametric_rc(18, 2, 54);
    util::Rng rng(55);
    Matrix v = la::orthonormalize(varmor::testing::random_matrix(sys.size(), 5, rng));
    ReducedModel red = project(sys, v);
    const std::vector<double> p{0.6, -0.2};
    Matrix direct = la::matmul_transA(v, sys.g_at(p).apply(v));
    varmor::testing::expect_near(red.g_at(p), direct, 1e-12);
}

TEST(ReducedModel, TransferSensitivityMatchesFiniteDifference) {
    circuit::ParametricSystem sys = small_parametric_rc(15, 2, 58);
    ReducedModel red = project(sys, Matrix::identity(sys.size()));
    const cplx s(0.0, 0.6);
    const std::vector<double> p{0.3, -0.2};
    const double h = 1e-6;
    for (int i = 0; i < 2; ++i) {
        std::vector<double> pp = p, pm = p;
        pp[static_cast<std::size_t>(i)] += h;
        pm[static_cast<std::size_t>(i)] -= h;
        const la::ZMatrix fd =
            cplx(1.0 / (2.0 * h)) * (red.transfer(s, pp) - red.transfer(s, pm));
        const la::ZMatrix analytic = red.transfer_sensitivity(s, p, i);
        EXPECT_LE(la::norm_max(analytic - fd), 1e-5 * (1 + la::norm_max(analytic)))
            << "parameter " << i;
    }
    EXPECT_THROW(red.transfer_sensitivity(s, p, 2), Error);
    EXPECT_THROW(red.transfer_sensitivity(s, p, -1), Error);
}

TEST(ReducedModel, ProjectValidatesBasis) {
    circuit::ParametricSystem sys = small_parametric_rc(10, 1, 56);
    EXPECT_THROW(project(sys, Matrix(5, 2)), Error);                 // wrong rows
    EXPECT_THROW(project(sys, Matrix(sys.size(), 0)), Error);        // empty
    EXPECT_THROW(project(sys, Matrix(sys.size(), sys.size() + 1)), Error);
}

TEST(ReducedModel, WrongParameterCountThrows) {
    circuit::ParametricSystem sys = small_parametric_rc(10, 2, 57);
    ReducedModel red = project(sys, Matrix::identity(sys.size()));
    EXPECT_THROW(red.g_at({0.1}), Error);
    EXPECT_THROW(red.transfer(cplx(0, 1), {0.1, 0.2, 0.3}), Error);
}

}  // namespace
}  // namespace varmor::mor
