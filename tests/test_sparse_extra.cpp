// Additional sparse stress tests: structured patterns, permutation
// consistency, failure injection, cross-checks against dense computations.

#include <gtest/gtest.h>

#include "la/lu_dense.h"
#include "la/orth.h"
#include "la/svd.h"
#include "sparse/arnoldi.h"
#include "sparse/csc.h"
#include "sparse/ordering.h"
#include "sparse/splu.h"
#include "sparse/svd_iterative.h"
#include "test_helpers.h"

namespace varmor::sparse {
namespace {

using la::Matrix;
using la::Vector;

Csc arrow_matrix(int n) {
    // Arrowhead: dense first row/column + diagonal. Natural ordering fills
    // completely; min-degree keeps it sparse — a classic ordering test.
    Triplets t(n, n);
    for (int i = 0; i < n; ++i) {
        t.add(i, i, 4.0 + i * 0.01);
        if (i > 0) {
            t.add(0, i, -1.0);
            t.add(i, 0, -1.0);
        }
    }
    return Csc(t);
}

TEST(SparseExtra, ArrowheadMinDegreeAvoidsFill) {
    const int n = 200;
    Csc a = arrow_matrix(n);
    SparseLu::Options md;
    md.ordering = SparseLu::Options::Ordering::min_degree;
    SparseLu::Options nat;
    nat.ordering = SparseLu::Options::Ordering::natural;
    SparseLu lu_md(a, md);
    SparseLu lu_nat(a, nat);
    // Min degree eliminates the spokes first: O(n) fill vs O(n^2).
    EXPECT_LT(lu_md.nnz_l() + lu_md.nnz_u(), 5 * n);
    EXPECT_GT(lu_nat.nnz_l() + lu_nat.nnz_u(), n * n / 4);
    // Both still solve correctly.
    Vector b(n);
    for (int i = 0; i < n; ++i) b[i] = 1.0;
    EXPECT_LE(la::norm2(a.apply(lu_md.solve(b)) - b), 1e-9 * la::norm2(b));
    EXPECT_LE(la::norm2(a.apply(lu_nat.solve(b)) - b), 1e-9 * la::norm2(b));
}

TEST(SparseExtra, SolveCountTracksUsage) {
    util::Rng rng(1);
    Triplets t(10, 10);
    for (int i = 0; i < 10; ++i) t.add(i, i, 2.0);
    SparseLu lu{Csc(t)};
    EXPECT_EQ(lu.solve_count(), 0);
    Vector b(10);
    b[0] = 1.0;
    (void)lu.solve(b);
    (void)lu.solve_transpose(b);
    EXPECT_EQ(lu.solve_count(), 2);
}

TEST(SparseExtra, ZeroMatrixRejected) {
    Triplets t(3, 3);
    EXPECT_THROW(SparseLu{Csc(t)}, Error);
}

TEST(SparseExtra, FloatingNetworkLaplacianDetectedAsSingular) {
    // The failure mode that motivated the driver resistors in the
    // generators: a pure resistive tree with no path to ground.
    const int n = 30;
    Triplets t(n, n);
    util::Rng rng(2);
    for (int k = 1; k < n; ++k) {
        const int parent = rng.below(k);
        const double g = rng.uniform(0.5, 2.0);
        t.add(k, k, g);
        t.add(parent, parent, g);
        t.add(k, parent, -g);
        t.add(parent, k, -g);
    }
    EXPECT_THROW(SparseLu{Csc(t)}, Error);
}

TEST(SparseExtra, ComplexTransposeSolve) {
    util::Rng rng(3);
    const int n = 25;
    TripletsT<la::cplx> t(n, n);
    for (int j = 0; j < n; ++j) {
        t.add(j, j, la::cplx(3.0 + rng.uniform(0, 1), rng.uniform(-1, 1)));
        for (int k = 0; k < 2; ++k)
            t.add(rng.below(n), j, la::cplx(rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)));
    }
    ZCsc a(t);
    ZSparseLu lu(a);
    la::ZVector b(n);
    for (int i = 0; i < n; ++i) b[i] = la::cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    la::ZVector x = lu.solve_transpose(b);
    la::ZVector r = a.apply_transpose(x) - b;
    EXPECT_LE(la::norm2(r), 1e-9 * (1 + la::norm2(b)));
}

TEST(SparseExtra, LanczosSvdOnRectangularOperator) {
    util::Rng rng(4);
    const int m = 40, n = 25;
    Matrix a = varmor::testing::random_matrix(m, n, rng);
    la::SvdResult dense = la::svd(a);
    la::SvdResult lanczos = truncated_svd_lanczos(dense_operator(a), 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(lanczos.s[static_cast<std::size_t>(i)],
                    dense.s[static_cast<std::size_t>(i)], 1e-7 * dense.s[0]);
}

TEST(SparseExtra, LanczosSeedIndependenceForSeparatedSpectrum) {
    // Distinct leading singular values: the computed subspace must not
    // depend on the random start vector (up to tolerance).
    util::Rng rng(5);
    const int n = 30;
    Matrix u0 = la::orthonormalize(varmor::testing::random_matrix(n, 2, rng));
    Matrix v0 = la::orthonormalize(varmor::testing::random_matrix(n, 2, rng));
    Matrix a(n, n);
    const double sv[2] = {50.0, 5.0};
    for (int k = 0; k < 2; ++k)
        for (int j = 0; j < n; ++j)
            for (int i = 0; i < n; ++i) a(i, j) += sv[k] * u0(i, k) * v0(j, k);

    TruncatedSvdOptions o1, o2;
    o1.seed = 11;
    o2.seed = 999;
    la::SvdResult r1 = truncated_svd_lanczos(dense_operator(a), 2, o1);
    la::SvdResult r2 = truncated_svd_lanczos(dense_operator(a), 2, o2);
    EXPECT_NEAR(r1.s[0], r2.s[0], 1e-8 * r1.s[0]);
    // Compare subspaces via principal angles (projector difference).
    Matrix p1 = la::matmul(r1.u, la::transpose(r1.u));
    Matrix p2 = la::matmul(r2.u, la::transpose(r2.u));
    EXPECT_LE(la::norm_max(p1 - p2), 1e-6);
}

TEST(SparseExtra, ArnoldiOnPermutedOperatorSameSpectrum) {
    // Eigenvalues are invariant under similarity P A P^T.
    util::Rng rng(6);
    const int n = 40;
    Matrix a = varmor::testing::random_matrix(n, n, rng);
    std::vector<int> perm = rcm_ordering(from_dense(a));
    Matrix pa(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            pa(i, j) = a(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
    ArnoldiOptions opts;
    opts.subspace = n;
    auto r1 = arnoldi_eigenvalues(dense_operator(a), opts);
    auto r2 = arnoldi_eigenvalues(dense_operator(pa), opts);
    ASSERT_EQ(r1.ritz_values.size(), r2.ritz_values.size());
    // Conjugate pairs tie in |lambda|, so compare each leading value of r1
    // against the closest value of r2 instead of index-wise.
    for (std::size_t i = 0; i < 3; ++i) {
        double best = 1e300;
        for (const la::cplx& z : r2.ritz_values)
            best = std::min(best, std::abs(r1.ritz_values[i] - z));
        EXPECT_LE(best, 1e-6 * (1 + std::abs(r1.ritz_values[i]))) << "ritz " << i;
    }
}

TEST(SparseExtra, AddCancellationProducesEmptyMatrix) {
    Triplets t(3, 3);
    t.add(0, 1, 2.0);
    t.add(2, 2, -1.0);
    Csc a(t);
    Csc zero = add(1.0, a, -1.0, a);
    EXPECT_EQ(zero.nnz(), 0);
}

}  // namespace
}  // namespace varmor::sparse
