// Additional MOR property tests: cross-method consistency, reduced-model
// invariances, parameter-space edge cases.

#include <gtest/gtest.h>

#include "la/lu_dense.h"
#include "la/orth.h"
#include "mor/lowrank_pmor.h"
#include "mor/multi_point.h"
#include "mor/prima.h"
#include "mor/single_point.h"
#include "mor_test_utils.h"
#include "test_helpers.h"

namespace varmor::mor {
namespace {

using la::Matrix;
using varmor::testing::max_moment_mismatch;
using varmor::testing::oracle_of;
using varmor::testing::small_parametric_rc;

TEST(MorExtra, LowRankBasisContainsPrimaBasis) {
    // V0 of Algorithm 1 with s_order = k spans the PRIMA space with k+1
    // blocks: the low-rank model can never be worse than PRIMA at nominal.
    circuit::ParametricSystem sys = small_parametric_rc(30, 2, 301);
    LowRankPmorOptions lr;
    lr.s_order = 4;
    lr.param_order = 1;
    LowRankPmorResult rom = lowrank_pmor(sys, lr);
    PrimaOptions popts;
    popts.blocks = 5;
    Matrix vp = prima_basis(sys.g0, sys.c0, sys.b, popts);
    // Every PRIMA column must lie in span(rom.basis).
    for (int j = 0; j < vp.cols(); ++j) {
        la::Vector x = vp.col(j);
        la::Vector proj = la::matvec(rom.basis, la::matvec_transpose(rom.basis, x));
        EXPECT_LE(la::norm2(x - proj), 1e-8) << "column " << j;
    }
}

TEST(MorExtra, ZeroParameterSystemDegradesToPrima) {
    // A parametric system with zero-valued sensitivities must reduce to the
    // same transfer function as plain PRIMA.
    circuit::ParametricSystem sys = small_parametric_rc(25, 0, 302);
    // Manufacture two zero sensitivity matrices.
    sparse::Triplets empty(sys.size(), sys.size());
    sys.dg = {sparse::Csc(empty), sparse::Csc(empty)};
    sys.dc = {sparse::Csc(empty), sparse::Csc(empty)};
    sys.validate();

    LowRankPmorOptions lr;
    lr.s_order = 4;
    LowRankPmorResult rom = lowrank_pmor(sys, lr);
    PrimaOptions popts;
    popts.blocks = 5;
    ReducedModel prima = project(sys, prima_basis(sys.g0, sys.c0, sys.b, popts));

    const la::cplx s(0.0, 0.4);
    EXPECT_LE(la::norm_max(rom.model.transfer(s, {0.0, 0.0}) -
                           prima.transfer(s, {0.0, 0.0})),
              1e-9 * (1 + la::norm_max(prima.transfer(s, {0.0, 0.0}))));
}

TEST(MorExtra, TransferSymmetricForReciprocalRcNetwork) {
    // RC networks with B = L are reciprocal: H(s, p) is symmetric. The
    // congruence-projected model must inherit that.
    circuit::ParametricSystem sys = small_parametric_rc(30, 2, 303);
    LowRankPmorResult rom = lowrank_pmor(sys, {});
    const la::ZMatrix h = rom.model.transfer(la::cplx(0, 0.7), {0.5, -0.5});
    ASSERT_EQ(h.rows(), 2);
    EXPECT_LE(std::abs(h(0, 1) - h(1, 0)), 1e-12 * (1 + std::abs(h(0, 1))));
}

TEST(MorExtra, PolesContinuousInParameters) {
    // Small parameter steps must move the dominant pole smoothly (no jumps):
    // sanity for optimization/yield loops built on the parametric model.
    circuit::ParametricSystem sys = small_parametric_rc(30, 2, 304);
    LowRankPmorResult rom = lowrank_pmor(sys, {});
    double prev = 0.0;
    for (int k = 0; k <= 10; ++k) {
        const double t = -1.0 + 0.2 * k;
        const auto poles = rom.model.poles({t, -t});
        ASSERT_FALSE(poles.empty());
        const double dom = poles[0].real();
        if (k > 0) {
            EXPECT_LT(std::abs(dom - prev), 0.35 * std::abs(prev));
        }
        prev = dom;
    }
}

TEST(MorExtra, SinglePointSubsumesLowRankAtFullRank) {
    // With rank = n (no truncation) the low-rank "nearby" system IS the
    // original, so single-point and low-rank match the same moments. Verify
    // both reach the oracle at order 2.
    circuit::ParametricSystem sys = small_parametric_rc(12, 1, 305);
    SinglePointOptions sp;
    sp.order = 2;
    SinglePointResult spr = single_point_basis(sys, sp);
    LowRankPmorOptions lr;
    lr.s_order = 2;
    lr.param_order = 2;
    lr.rank = 12;  // full rank
    LowRankPmorResult rom = lowrank_pmor(sys, lr);

    MomentOracle full = oracle_of(sys);
    MomentOracle red_sp = oracle_of(project(sys, spr.basis));
    MomentOracle red_lr = oracle_of(project(sys, rom.basis));
    EXPECT_LE(max_moment_mismatch(full, red_sp, 2, 1), 1e-7);
    EXPECT_LE(max_moment_mismatch(full, red_lr, 2, 1), 1e-7);
}

TEST(MorExtra, ProjectionIdempotent) {
    // Projecting an already-reduced-size system with identity-like V of the
    // same span must not change the transfer function.
    circuit::ParametricSystem sys = small_parametric_rc(20, 2, 306);
    LowRankPmorResult rom = lowrank_pmor(sys, {});
    // Rotate the basis by an orthogonal matrix: same span, same model.
    util::Rng rng(307);
    Matrix rot = la::orthonormalize(
        varmor::testing::random_matrix(rom.basis.cols(), rom.basis.cols(), rng));
    Matrix v2 = la::matmul(rom.basis, rot);
    ReducedModel m2 = project(sys, v2);
    const la::cplx s(0.0, 0.3);
    const std::vector<double> p{0.4, 0.4};
    EXPECT_LE(la::norm_max(rom.model.transfer(s, p) - m2.transfer(s, p)),
              1e-9 * (1 + la::norm_max(rom.model.transfer(s, p))));
}

TEST(MorExtra, MultiPointSamplesOutsideRangeStillPassive) {
    // Sampling beyond the physical range must not break passivity of the
    // projected model inside the range (projection is still congruence).
    circuit::ParametricSystem sys = small_parametric_rc(25, 1, 308);
    MultiPointOptions mp;
    mp.blocks_per_sample = 3;
    MultiPointResult r = multi_point_basis(sys, {{-1.5}, {1.5}}, mp);
    ReducedModel m = project(sys, r.basis);
    for (double p : {-1.0, 0.0, 1.0}) {
        const Matrix gs = la::symmetric_part(m.g_at({p}));
        double min_diag = 1e300;
        for (int i = 0; i < gs.rows(); ++i) min_diag = std::min(min_diag, gs(i, i));
        EXPECT_GT(min_diag, -1e-10);
    }
}

class RankSweepProperty : public ::testing::TestWithParam<int> {};

TEST_P(RankSweepProperty, TheoremOneHoldsAtEveryRank) {
    const int rank = GetParam();
    circuit::ParametricSystem sys = small_parametric_rc(18, 2, 309);
    LowRankPmorOptions opts;
    opts.s_order = 2;
    opts.param_order = 2;
    opts.rank = rank;
    LowRankPmorResult rom = lowrank_pmor(sys, opts);
    // At any rank the basis must contain R0 and the U^ seeds (weak but
    // rank-independent part of Theorem 1); spot-check via projection.
    const sparse::SparseLu lu(sys.g0);
    Matrix r0 = lu.solve(sys.b);
    for (int j = 0; j < r0.cols(); ++j) {
        la::Vector x = r0.col(j);
        la::Vector proj = la::matvec(rom.basis, la::matvec_transpose(rom.basis, x));
        EXPECT_LE(la::norm2(x - proj), 1e-8 * (1 + la::norm2(x)));
    }
    for (const la::SvdResult& f : rom.sensitivity_factors) {
        for (int j = 0; j < f.u.cols(); ++j) {
            la::Vector x = f.u.col(j);
            la::Vector proj = la::matvec(rom.basis, la::matvec_transpose(rom.basis, x));
            EXPECT_LE(la::norm2(x - proj), 1e-8);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweepProperty, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace varmor::mor
