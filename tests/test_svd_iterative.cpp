#include <gtest/gtest.h>

#include "la/orth.h"
#include "la/svd.h"
#include "sparse/linear_operator.h"
#include "sparse/splu.h"
#include "sparse/svd_iterative.h"
#include "test_helpers.h"

namespace varmor::sparse {
namespace {

using la::Matrix;
using la::Vector;
using varmor::testing::random_matrix;

TEST(DenseOperator, MatchesMatrix) {
    util::Rng rng(1);
    Matrix a = random_matrix(6, 4, rng);
    LinearOperator op = dense_operator(a);
    EXPECT_EQ(op.rows(), 6);
    EXPECT_EQ(op.cols(), 4);
    Vector x(4);
    for (int i = 0; i < 4; ++i) x[i] = rng.uniform(-1, 1);
    EXPECT_LE(la::norm2(op.apply(x) - la::matvec(a, x)), 1e-14);
    Vector y(6);
    for (int i = 0; i < 6; ++i) y[i] = rng.uniform(-1, 1);
    EXPECT_LE(la::norm2(op.apply_transpose(y) - la::matvec_transpose(a, y)), 1e-14);
}

TEST(LinearOperator, DimensionChecks) {
    util::Rng rng(2);
    LinearOperator op = dense_operator(random_matrix(3, 5, rng));
    EXPECT_THROW(op.apply(Vector(3)), Error);
    EXPECT_THROW(op.apply_transpose(Vector(5)), Error);
}

class TruncatedSvdEngines
    : public ::testing::TestWithParam<bool> {};  // true = lanczos, false = randomized

la::SvdResult run_engine(bool lanczos, const LinearOperator& op, int rank) {
    return lanczos ? truncated_svd_lanczos(op, rank) : truncated_svd_randomized(op, rank);
}

TEST_P(TruncatedSvdEngines, MatchesDenseSvdLeadingValues) {
    util::Rng rng(3);
    Matrix a = random_matrix(40, 30, rng);
    la::SvdResult dense = la::svd(a);
    la::SvdResult t = run_engine(GetParam(), dense_operator(a), 3);
    ASSERT_GE(static_cast<int>(t.s.size()), 3);
    // A random matrix has an almost flat spectrum: the Lanczos engine still
    // resolves it sharply, the randomized range finder is accurate to the
    // usual (sigma_{k+1}/sigma_k)-limited factor.
    const double tol = GetParam() ? 1e-6 : 5e-2;
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(t.s[static_cast<std::size_t>(i)], dense.s[static_cast<std::size_t>(i)],
                    tol * dense.s[0]);
}

TEST_P(TruncatedSvdEngines, FactorsOrthonormalAndAccurate) {
    util::Rng rng(4);
    // Rapidly decaying spectrum (like generalized sensitivity matrices).
    const int n = 50;
    Matrix u0 = la::orthonormalize(random_matrix(n, 5, rng));
    Matrix v0 = la::orthonormalize(random_matrix(n, 5, rng));
    Matrix a(n, n);
    const double sv[5] = {100.0, 10.0, 1.0, 0.1, 0.01};
    for (int k = 0; k < 5; ++k)
        for (int j = 0; j < n; ++j)
            for (int i = 0; i < n; ++i) a(i, j) += sv[k] * u0(i, k) * v0(j, k);

    la::SvdResult t = run_engine(GetParam(), dense_operator(a), 2);
    EXPECT_LE(la::orthonormality_error(t.u), 1e-8);
    EXPECT_LE(la::orthonormality_error(t.v), 1e-8);
    EXPECT_NEAR(t.s[0], 100.0, 1e-4);
    EXPECT_NEAR(t.s[1], 10.0, 1e-4);
    // Rank-2 reconstruction error ~ sigma_3 = 1.
    Matrix rec = la::svd_reconstruct(t);
    EXPECT_LE(la::norm_fro(a - rec), 1.5);
}

TEST_P(TruncatedSvdEngines, RankOneOfOuterProduct) {
    util::Rng rng(5);
    const int m = 30, n = 20;
    Vector u(m), v(n);
    for (int i = 0; i < m; ++i) u[i] = rng.uniform(-1, 1);
    for (int i = 0; i < n; ++i) v[i] = rng.uniform(-1, 1);
    Matrix a(m, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i) a(i, j) = u[i] * v[j];
    la::SvdResult t = run_engine(GetParam(), dense_operator(a), 1);
    EXPECT_NEAR(t.s[0], la::norm2(u) * la::norm2(v), 1e-8);
    EXPECT_LE(la::norm_fro(a - la::svd_reconstruct(t)), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Engines, TruncatedSvdEngines, ::testing::Values(true, false));

TEST(TruncatedSvd, MatrixImplicitGeneralizedSensitivity) {
    // The production shape: M = G0^-1 G1 exposed only through solves. The
    // Lanczos engine must agree with the dense SVD of the explicit product.
    util::Rng rng(6);
    const int n = 40;
    Triplets tg(n, n), tg1(n, n);
    for (int i = 0; i < n; ++i) {
        tg.add(i, i, 2.0 + rng.uniform(0, 1));
        if (i > 0) {
            tg.add(i, i - 1, -1.0);
            tg.add(i - 1, i, -1.0);
        }
        if (i % 3 == 0) tg1.add(i, i, rng.uniform(0.5, 1.0));  // sparse sensitivity
    }
    Csc g0(tg), g1(tg1);
    SparseLu lu(g0);
    LinearOperator op(
        n, n, [&](const Vector& x) { return lu.solve(g1.apply(x)); },
        [&](const Vector& x) { return g1.apply_transpose(lu.solve_transpose(x)); });

    Matrix dense_product = lu.solve(g1.to_dense());
    la::SvdResult expected = la::svd(dense_product);
    la::SvdResult got = truncated_svd_lanczos(op, 3);
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(got.s[static_cast<std::size_t>(i)], expected.s[static_cast<std::size_t>(i)],
                    1e-7 * (expected.s[0] + 1e-30));
}

TEST(TruncatedSvd, InvalidRankThrows) {
    util::Rng rng(7);
    LinearOperator op = dense_operator(random_matrix(4, 4, rng));
    EXPECT_THROW(truncated_svd_lanczos(op, 0), Error);
    EXPECT_THROW(truncated_svd_randomized(op, 0), Error);
}

TEST(TruncatedSvd, NoTransposeThrows) {
    LinearOperator op(3, 3, [](const Vector& x) { return x; }, nullptr);
    EXPECT_THROW(truncated_svd_lanczos(op, 1), Error);
}

}  // namespace
}  // namespace varmor::sparse
