// Before/after harness for the solve-context refactor: the analysis drivers
// (sweep_full, TransientBatchRunner, pole_error_study, multi_point_basis)
// were rewired from private copies of the batched-solve scaffold onto
// solve::ParametricSolveContext. Each test reconstructs the pre-refactor
// scaffold inline — union-pattern assemblers, one symbolic analysis, a
// reference factorization, refactorize-or-fallback per point — and asserts
// the rewired drivers produce BIT-IDENTICAL results at threads = 1 and 8.

#include <gtest/gtest.h>

#include <complex>

#include "analysis/freq_sweep.h"
#include "analysis/monte_carlo.h"
#include "analysis/poles.h"
#include "analysis/transient.h"
#include "analysis/transient_batch.h"
#include "circuit/mna.h"
#include "la/ops.h"
#include "mor/lowrank_pmor.h"
#include "mor/multi_point.h"
#include "mor/rom_eval.h"
#include "mor_test_utils.h"
#include "solve/parametric_context.h"
#include "util/constants.h"

namespace varmor {
namespace {

using la::cplx;
using la::ZMatrix;

void expect_bit_identical(const std::vector<ZMatrix>& a, const std::vector<ZMatrix>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].rows(), b[i].rows());
        ASSERT_EQ(a[i].cols(), b[i].cols());
        for (std::size_t k = 0; k < a[i].raw().size(); ++k) {
            EXPECT_EQ(a[i].raw()[k].real(), b[i].raw()[k].real()) << "point " << i;
            EXPECT_EQ(a[i].raw()[k].imag(), b[i].raw()[k].imag()) << "point " << i;
        }
    }
}

void expect_bit_identical(const analysis::TransientResult& a,
                          const analysis::TransientResult& b) {
    ASSERT_EQ(a.time.size(), b.time.size());
    for (std::size_t i = 0; i < a.time.size(); ++i) EXPECT_EQ(a.time[i], b.time[i]);
    ASSERT_EQ(a.ports.size(), b.ports.size());
    for (std::size_t k = 0; k < a.ports.size(); ++k) {
        ASSERT_EQ(a.ports[k].size(), b.ports[k].size());
        for (std::size_t i = 0; i < a.ports[k].size(); ++i)
            EXPECT_EQ(a.ports[k][i], b.ports[k][i]) << "port " << k << " step " << i;
    }
}

// ---------------------------------------------------------------------------
// The context's pattern contract: the sweep pencil and the trapezoid pencils
// carry exactly the context's union(G, C) pattern, so one symbolic analysis
// legally serves all of them (and the per-study scaffolds share it).
// ---------------------------------------------------------------------------

TEST(SolveContext, PencilPatternIsParameterIndependent) {
    const circuit::ParametricSystem sys = testing::small_parametric_rc(25, 2, 5);
    const solve::ParametricSolveContext ctx(sys);

    const solve::PencilBatch at_zero(ctx, {0.0, 0.0}, cplx(0.0, 1.0));
    const solve::PencilBatch at_p(ctx, {0.3, -0.2}, cplx(0.0, 1.0));
    EXPECT_EQ(at_zero.assembler().skeleton().col_ptr(), ctx.pencil_col_ptr());
    EXPECT_EQ(at_zero.assembler().skeleton().row_idx(), ctx.pencil_row_idx());
    EXPECT_EQ(at_p.assembler().skeleton().col_ptr(), ctx.pencil_col_ptr());
    EXPECT_EQ(at_p.assembler().skeleton().row_idx(), ctx.pencil_row_idx());
}

TEST(SolveContext, SymbolicAnalysesAreLazyAndCached) {
    const circuit::ParametricSystem sys = testing::small_parametric_rc(20, 2, 6);
    const solve::ParametricSolveContext ctx(sys);
    EXPECT_EQ(ctx.symbolic_analyses(), 0);

    (void)ctx.g_symbolic();
    EXPECT_EQ(ctx.symbolic_analyses(), 1);
    (void)ctx.g_symbolic();
    EXPECT_EQ(ctx.symbolic_analyses(), 1);

    (void)ctx.pencil_symbolic();
    EXPECT_EQ(ctx.symbolic_analyses(), 2);
    (void)ctx.pencil_symbolic();
    EXPECT_EQ(ctx.symbolic_analyses(), 2);
}

TEST(SolveContext, SweepsShareOneSymbolicAnalysis) {
    const circuit::ParametricSystem sys = testing::small_parametric_rc(25, 2, 7);
    const solve::ParametricSolveContext ctx(sys);
    const auto freqs = analysis::log_frequencies(1e-2, 1.0, 9);

    (void)analysis::sweep_full(ctx, {0.1, 0.0}, freqs);
    (void)analysis::sweep_full(ctx, {-0.2, 0.3}, freqs);
    (void)analysis::sweep_full(ctx, {0.0, 0.0}, freqs);
    EXPECT_EQ(ctx.symbolic_analyses(), 1);
}

// ---------------------------------------------------------------------------
// sweep_full: reconstruction of the scaffold (union-pattern pencil, one
// symbolic analysis, reference at the first frequency, refactorize-or-
// fallback per point, serial).
// ---------------------------------------------------------------------------

std::vector<ZMatrix> reference_sweep(const circuit::ParametricSystem& sys,
                                     const std::vector<double>& p,
                                     const std::vector<double>& freqs) {
    const circuit::ParametricStamper stamper(sys);
    const sparse::PencilAssembler pencil(stamper.g_at(p), stamper.c_at(p));
    const la::ZMatrix bz = la::to_complex(sys.b);
    const la::ZMatrix lzt = la::transpose(la::to_complex(sys.l));
    auto s_of = [&](double f) { return cplx(0.0, util::two_pi_f(f)); };

    const sparse::ZCsc skel = pencil.skeleton();
    const sparse::SpluSymbolic symbolic = sparse::SpluSymbolic::analyze(skel);
    sparse::ZSparseLu::Options lu_opts;
    lu_opts.symbolic = &symbolic;
    const sparse::ZSparseLu reference(pencil.assemble(s_of(freqs[0])), lu_opts);

    std::vector<ZMatrix> out(freqs.size());
    out[0] = la::matmul(lzt, reference.solve(bz));
    sparse::ZCsc a = pencil.skeleton();
    sparse::ZSparseLu lu = reference;
    sparse::ZSpluWorkspace ws;
    for (std::size_t i = 1; i < freqs.size(); ++i) {
        pencil.assemble(s_of(freqs[i]), a);
        ZMatrix x;
        try {
            lu.refactorize(a, ws);
            x = lu.solve(bz);
        } catch (const sparse::RefactorError&) {
            x = sparse::ZSparseLu(a, lu_opts, ws).solve(bz);
        }
        out[i] = la::matmul(lzt, x);
    }
    return out;
}

TEST(SolveContextHarness, SweepFullUnchangedByRefactor) {
    const circuit::ParametricSystem sys = testing::small_parametric_rc(30, 2, 41);
    const auto freqs = analysis::log_frequencies(1e-3, 10.0, 21);
    for (const std::vector<double>& p :
         {std::vector<double>{0.2, -0.15}, std::vector<double>{0.0, 0.0}}) {
        const auto reference = reference_sweep(sys, p, freqs);
        for (int threads : {1, 8}) {
            analysis::SweepOptions opts;
            opts.threads = threads;
            expect_bit_identical(reference, analysis::sweep_full(sys, p, freqs, opts));
        }
    }
}

// ---------------------------------------------------------------------------
// TransientBatchRunner: reconstruction of the pre-refactor engine (trapezoid
// AffineAssemblers from chained sparse adds, its own symbolic analysis of
// the trapezoid union pattern, nominal reference, refactorize-or-fallback
// per corner). The pre-refactor engine analyzed the TRAPEZOID pattern where
// the context analyzes union(G, C) — the test proves those patterns (and
// hence the factorizations) are identical.
// ---------------------------------------------------------------------------

std::vector<analysis::TransientResult> reference_transient_batch(
    const circuit::ParametricSystem& sys, const std::vector<std::vector<double>>& corners,
    const analysis::InputFn& input, const analysis::TransientOptions& opts) {
    const double inv_h = 1.0 / opts.dt;
    auto pencil = [&](double g_sign) {
        const sparse::Csc base = sparse::add(inv_h, sys.c0, g_sign * 0.5, sys.g0);
        std::vector<sparse::Csc> terms;
        for (std::size_t i = 0; i < sys.dg.size(); ++i)
            terms.push_back(sparse::add(inv_h, sys.dc[i], g_sign * 0.5, sys.dg[i]));
        return sparse::AffineAssembler(base, terms);
    };
    const sparse::AffineAssembler lhs = pencil(+1.0);
    const sparse::AffineAssembler rhs = pencil(-1.0);
    const sparse::SpluSymbolic symbolic = sparse::SpluSymbolic::analyze(lhs.skeleton());
    const std::vector<double> p0(sys.dg.size(), 0.0);
    const sparse::SparseLu reference(lhs.combine(p0), symbolic);

    const analysis::detail::StepGrid grid = analysis::detail::make_grid(opts);
    const auto forcing = analysis::detail::forcing_series(
        grid, input, [&](const la::Vector& u) { return la::matvec(sys.b, u); });

    std::vector<analysis::TransientResult> out;
    sparse::Csc lhs_m = lhs.skeleton();
    sparse::Csc rhs_m = rhs.skeleton();
    sparse::SparseLu lu = reference;
    sparse::SpluWorkspace ws;
    for (const std::vector<double>& p : corners) {
        rhs.combine(p, rhs_m);
        const sparse::SparseLu* solver = &lu;
        std::optional<sparse::SparseLu> corner_lu;
        if (std::all_of(p.begin(), p.end(), [](double v) { return v == 0.0; })) {
            corner_lu.emplace(reference);
            solver = &*corner_lu;
        } else {
            lhs.combine(p, lhs_m);
            try {
                lu.refactorize(lhs_m, ws);
            } catch (const sparse::RefactorError&) {
                sparse::SparseLu::Options lo;
                lo.symbolic = &symbolic;
                corner_lu.emplace(lhs_m, lo, ws);
                solver = &*corner_lu;
            }
        }
        out.push_back(analysis::detail::trapezoidal(
            sys.num_ports(), grid, forcing,
            [&](int, const la::Vector& r) { return solver->solve(r); },
            [&](int, const la::Vector& x) { return rhs_m.apply(x); },
            [&](const la::Vector& x) { return la::matvec_transpose(sys.l, x); },
            sys.size()));
    }
    return out;
}

TEST(SolveContextHarness, TransientBatchUnchangedByRefactor) {
    const circuit::ParametricSystem sys = testing::small_parametric_rc(30, 2, 97);
    analysis::MonteCarloOptions mc;
    mc.samples = 6;
    mc.sigma = 0.2;
    auto corners = analysis::sample_parameters(2, mc);
    corners.push_back({0.0, 0.0});  // nominal shortcut path

    analysis::TransientOptions topts;
    topts.t_stop = 20.0;
    topts.dt = 0.5;
    const analysis::InputFn input = analysis::step_input(sys.num_ports(), 0);

    const auto reference = reference_transient_batch(sys, corners, input, topts);
    const analysis::TransientBatchRunner runner(sys, topts);
    for (int threads : {1, 8}) {
        const auto batch = runner.run_batch(corners, input, threads);
        ASSERT_EQ(batch.size(), reference.size());
        for (std::size_t k = 0; k < corners.size(); ++k)
            expect_bit_identical(reference[k], batch[k]);
    }
}

// ---------------------------------------------------------------------------
// pole_error_study: reconstruction of the pre-refactor loop (stamper +
// symbolic of the G union pattern + per-sample fresh factorization, serial).
// ---------------------------------------------------------------------------

TEST(SolveContextHarness, PoleErrorStudyUnchangedByRefactor) {
    const circuit::ParametricSystem sys = testing::small_parametric_rc(40, 2, 13);
    mor::LowRankPmorOptions mopts;
    mopts.s_order = 3;
    mopts.param_order = 2;
    const mor::LowRankPmorResult model = mor::lowrank_pmor(sys, mopts);

    analysis::MonteCarloOptions mc;
    mc.samples = 6;
    const auto samples = analysis::sample_parameters(2, mc);
    analysis::PoleOptions popts;
    popts.count = 3;

    // Pre-refactor scaffold, serial.
    const circuit::ParametricStamper stamper(sys);
    const sparse::SpluSymbolic symbolic =
        sparse::SpluSymbolic::analyze(stamper.g_skeleton());
    const mor::RomEvalEngine rom_engine(model.model);
    std::vector<std::vector<double>> want_errors;
    {
        sparse::Csc g = stamper.g_skeleton();
        sparse::Csc c = stamper.c_skeleton();
        mor::RomEvalWorkspace rom_ws;
        for (const auto& p : samples) {
            stamper.g_at(p, g);
            stamper.c_at(p, c);
            const auto full = analysis::dominant_poles(g, c, popts, symbolic);
            if (full.empty()) {
                want_errors.push_back({});
                continue;
            }
            rom_engine.stamp_parameters(p, rom_ws);
            auto red = rom_engine.poles(rom_ws);
            const std::size_t want = static_cast<std::size_t>(popts.count) * 2 + 4;
            if (red.size() > want) red.resize(want);
            want_errors.push_back(analysis::pole_match_errors(full, red));
        }
    }

    for (int threads : {1, 8}) {
        const auto study = analysis::pole_error_study(sys, model.model, samples, popts, threads);
        ASSERT_EQ(study.errors.size(), want_errors.size());
        for (std::size_t i = 0; i < want_errors.size(); ++i) {
            ASSERT_EQ(study.errors[i].size(), want_errors[i].size()) << "sample " << i;
            for (std::size_t j = 0; j < want_errors[i].size(); ++j)
                EXPECT_EQ(study.errors[i][j], want_errors[i][j]) << "sample " << i;
        }
    }
}

// ---------------------------------------------------------------------------
// multi_point_basis: the context overload and the one-shot overload are the
// same computation.
// ---------------------------------------------------------------------------

TEST(SolveContextHarness, MultiPointBasisContextMatchesOneShot) {
    const circuit::ParametricSystem sys = testing::small_parametric_rc(30, 2, 21);
    const auto samples = mor::grid_samples(2, {-1.0, 0.0, 1.0});
    mor::MultiPointOptions opts;
    opts.blocks_per_sample = 3;

    const mor::MultiPointResult one_shot = mor::multi_point_basis(sys, samples, opts);

    const solve::ParametricSolveContext ctx(sys);
    const mor::MultiPointResult shared = mor::multi_point_basis(ctx, samples, opts);
    EXPECT_EQ(shared.factorizations, one_shot.factorizations);
    ASSERT_EQ(shared.basis.rows(), one_shot.basis.rows());
    ASSERT_EQ(shared.basis.cols(), one_shot.basis.cols());
    for (std::size_t e = 0; e < shared.basis.raw().size(); ++e)
        EXPECT_EQ(shared.basis.raw()[e], one_shot.basis.raw()[e]);

    // A second basis on the same context reuses the symbolic analysis.
    EXPECT_EQ(ctx.symbolic_analyses(), 1);
    (void)mor::multi_point_basis(ctx, samples, opts);
    EXPECT_EQ(ctx.symbolic_analyses(), 1);
}

// ---------------------------------------------------------------------------
// The fallback policy itself (RefactorBatchT): a value set that collapses
// the frozen reference pivots must take the fresh-factorization fallback and
// still solve accurately.
// ---------------------------------------------------------------------------

TEST(RefactorBatch, FallbackOnCollapsedPivotSolvesAccurately) {
    // Reference [[1, .5], [.5, 1]]; the batch matrix zeroes the (0,0) entry,
    // collapsing the frozen (diagonal) pivot while staying nonsingular.
    sparse::Triplets t(2, 2);
    t.add(0, 0, 1.0);
    t.add(0, 1, 0.5);
    t.add(1, 0, 0.5);
    t.add(1, 1, 1.0);
    const sparse::Csc m0(t);
    const sparse::SpluSymbolic symbolic = sparse::SpluSymbolic::analyze(m0);
    const solve::RefactorBatch batch(m0, symbolic);

    solve::RefactorBatch::Scratch scratch = batch.make_scratch([&] {
        sparse::Csc skel = m0;
        std::fill(skel.values().begin(), skel.values().end(), 0.0);
        return skel;
    }());
    scratch.a.values() = {0.0, 0.5, 0.5, 1.0};

    const sparse::SparseLu& lu = batch.factor(scratch);
    EXPECT_TRUE(scratch.fallback.has_value());  // took the fallback path
    const la::Vector x = lu.solve(la::Vector{1.0, 0.0});
    // [[0, .5], [.5, 1]] x = [1, 0]  =>  x = [-4, 2].
    EXPECT_NEAR(x[0], -4.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);

    // Reusing the same scratch for a benign matrix goes back to the
    // refactorize path and leaves no stale state.
    scratch.a.values() = {2.0, 0.5, 0.5, 1.0};
    const sparse::SparseLu& lu2 = batch.factor(scratch);
    const la::Vector y = lu2.solve(la::Vector{1.0, 1.0});
    EXPECT_NEAR(2.0 * y[0] + 0.5 * y[1], 1.0, 1e-12);
    EXPECT_NEAR(0.5 * y[0] + 1.0 * y[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace varmor
