#include <gtest/gtest.h>

#include "la/lu_dense.h"
#include "mor/moments.h"
#include "mor_test_utils.h"
#include "test_helpers.h"

namespace varmor::mor {
namespace {

using la::Matrix;
using varmor::testing::random_matrix;

/// Abstract well-scaled parametric system (not a circuit): G0 = I + small,
/// so the moment series converges for |s|, |p| < 1 and partial sums can be
/// compared against the exact resolvent.
struct AbstractSystem {
    Matrix g0, c0, g1, c1, g2, c2, b, l;
};

AbstractSystem make_abstract(int n, util::Rng& rng) {
    AbstractSystem s;
    s.g0 = Matrix::identity(n);
    auto small = [&](double scale) {
        Matrix m = random_matrix(n, n, rng);
        for (double& x : m.raw()) x *= scale / n;
        return m;
    };
    s.g0 = s.g0 + small(0.3);
    s.c0 = small(0.8);
    s.g1 = small(0.6);
    s.c1 = small(0.5);
    s.g2 = small(0.4);
    s.c2 = small(0.7);
    s.b = random_matrix(n, 2, rng);
    s.l = random_matrix(n, 2, rng);
    return s;
}

TEST(MomentOracle, ZeroOrderMomentIsR0) {
    util::Rng rng(1);
    AbstractSystem s = make_abstract(6, rng);
    MomentOracle oracle(s.g0, s.c0, {s.g1, s.g2}, {s.c1, s.c2}, s.b, s.l);
    MomentKey key;
    key.p = {0, 0};
    const Matrix r0 = la::solve_dense(s.g0, s.b);
    varmor::testing::expect_near(oracle.state_moment(key), r0, 1e-12);
}

TEST(MomentOracle, FirstSMomentIsMinusAR0) {
    util::Rng rng(2);
    AbstractSystem s = make_abstract(5, rng);
    MomentOracle oracle(s.g0, s.c0, {}, {}, s.b, s.l);
    MomentKey key;
    key.s = 1;
    const la::DenseLu<double> lu(s.g0);
    const Matrix expected = la::matmul(lu.solve(s.c0), lu.solve(s.b));
    Matrix got = oracle.state_moment(key);
    for (double& x : got.raw()) x = -x;
    varmor::testing::expect_near(got, expected, 1e-12);
}

/// The defining property: the truncated multi-parameter series reproduces
/// X(s, p) = (G(p) + s C(p))^-1 B with error dropping geometrically in the
/// truncation order.
TEST(MomentOracle, TruncatedSeriesConvergesToResolvent) {
    util::Rng rng(3);
    const int n = 7;
    AbstractSystem sys = make_abstract(n, rng);
    MomentOracle oracle(sys.g0, sys.c0, {sys.g1, sys.g2}, {sys.c1, sys.c2}, sys.b, sys.l);

    const double s = 0.23, p1 = 0.17, p2 = -0.21;
    // Exact resolvent at the evaluation point.
    Matrix gp = sys.g0;
    Matrix cp = sys.c0;
    for (std::size_t i = 0; i < gp.raw().size(); ++i) {
        gp.raw()[i] += p1 * sys.g1.raw()[i] + p2 * sys.g2.raw()[i] + s * sys.c0.raw()[i] * 0;
        cp.raw()[i] += p1 * sys.c1.raw()[i] + p2 * sys.c2.raw()[i];
    }
    Matrix pencil = gp;
    for (std::size_t i = 0; i < pencil.raw().size(); ++i)
        pencil.raw()[i] += s * cp.raw()[i];
    const Matrix exact = la::solve_dense(pencil, sys.b);

    double prev_err = 1e100;
    for (int order : {2, 4, 6, 8}) {
        Matrix sum(n, sys.b.cols());
        for (const MomentKey& key : MomentOracle::keys_up_to(order, 2)) {
            double coef = std::pow(s, key.s) * std::pow(p1, key.p[0]) * std::pow(p2, key.p[1]);
            const Matrix& m = oracle.state_moment(key);
            for (std::size_t i = 0; i < sum.raw().size(); ++i)
                sum.raw()[i] += coef * m.raw()[i];
        }
        const double err = la::norm_max(sum - exact);
        EXPECT_LT(err, 0.7 * prev_err) << "series must converge at order " << order;
        prev_err = err;
    }
    EXPECT_LT(prev_err, 1e-4);
}

TEST(MomentOracle, KeysEnumerationCountsMatchStarsAndBars) {
    // Number of multidegrees with total <= k over (s + np) variables is
    // C(k + np + 1, np + 1).
    auto count = [](int order, int np) {
        return static_cast<int>(MomentOracle::keys_up_to(order, np).size());
    };
    EXPECT_EQ(count(0, 0), 1);
    EXPECT_EQ(count(3, 0), 4);       // s^0..s^3
    EXPECT_EQ(count(2, 1), 6);       // C(4,2)
    EXPECT_EQ(count(2, 2), 10);      // C(5,3)
    EXPECT_EQ(count(4, 2), 35);      // C(7,3)
}

TEST(MomentOracle, RejectsNegativeAndMismatchedKeys) {
    util::Rng rng(4);
    AbstractSystem s = make_abstract(4, rng);
    MomentOracle oracle(s.g0, s.c0, {s.g1}, {s.c1}, s.b, s.l);
    MomentKey bad;
    bad.p = {0, 0};  // two parameters but oracle has one
    EXPECT_THROW(oracle.state_moment(bad), Error);
    MomentKey neg;
    neg.s = -1;
    neg.p = {0};
    EXPECT_THROW(oracle.state_moment(neg), Error);
}

TEST(MomentOracle, CircuitMomentsFiniteAndCached) {
    circuit::ParametricSystem sys = varmor::testing::small_parametric_rc(10, 2, 5);
    MomentOracle oracle = varmor::testing::oracle_of(sys);
    for (const MomentKey& key : MomentOracle::keys_up_to(3, 2)) {
        const Matrix m = oracle.port_moment(key);
        for (double v : m.raw()) EXPECT_TRUE(std::isfinite(v));
    }
}

}  // namespace
}  // namespace varmor::mor
