#include <gtest/gtest.h>

#include "analysis/freq_sweep.h"
#include "circuit/mna.h"
#include "mor/reduced_model.h"
#include "mor_test_utils.h"
#include "util/constants.h"

namespace varmor::analysis {
namespace {

using la::Matrix;

TEST(Frequencies, LogSpacingEndpointsAndMonotonicity) {
    auto f = log_frequencies(1e7, 1e10, 31);
    ASSERT_EQ(f.size(), 31u);
    EXPECT_NEAR(f.front(), 1e7, 1e-2);
    EXPECT_NEAR(f.back(), 1e10, 10);
    for (std::size_t i = 0; i + 1 < f.size(); ++i) EXPECT_LT(f[i], f[i + 1]);
    // Log spacing: constant ratio.
    EXPECT_NEAR(f[1] / f[0], f[2] / f[1], 1e-9);
}

TEST(Frequencies, LinearSpacing) {
    auto f = linear_frequencies(1e9, 2e9, 11);
    EXPECT_NEAR(f[1] - f[0], 1e8, 1.0);
    EXPECT_THROW(linear_frequencies(2e9, 1e9, 5), Error);
    EXPECT_THROW(log_frequencies(-1.0, 1e9, 5), Error);
}

TEST(FreqSweep, SingleRcAnalyticResponse) {
    // One-node RC low-pass driven by a current source:
    // V(s) = 1 / (g + sC), |V| = 1/sqrt(g^2 + (wC)^2).
    circuit::Netlist net;
    const int a = net.add_node();
    net.add_resistor(a, 0, 1.0);       // g = 1
    net.add_capacitor(a, 0, 1e-9);     // corner at ~1/(2 pi RC) = 159 MHz
    net.add_port(a);
    circuit::ParametricSystem sys = assemble_mna(net);

    auto freqs = log_frequencies(1e6, 1e10, 25);
    auto sweep = sweep_full(sys, {}, freqs);
    auto mag = magnitude_series(sweep, 0, 0);
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        const double w = util::two_pi_f(freqs[i]);
        const double expected = 1.0 / std::sqrt(1.0 + w * w * 1e-18);
        EXPECT_NEAR(mag[i], expected, 1e-9 * expected) << "f = " << freqs[i];
    }
}

TEST(FreqSweep, FullAndIdentityReducedAgree) {
    circuit::ParametricSystem sys = varmor::testing::small_parametric_rc(14, 2, 71);
    mor::ReducedModel red = mor::project(sys, Matrix::identity(sys.size()));
    const std::vector<double> p{0.4, -0.3};
    auto freqs = log_frequencies(1e-3, 1.0, 7);  // O(1) element values
    auto full = sweep_full(sys, p, freqs);
    auto reduced = sweep_reduced(red, p, freqs);
    for (std::size_t i = 0; i < freqs.size(); ++i)
        EXPECT_LE(la::norm_max(full[i] - reduced[i]), 1e-9 * (1 + la::norm_max(full[i])));
}

TEST(FreqSweep, VoltageTransferIsUnityAtDcForRcTree) {
    // At DC no current flows through an RC tree, so every node sits at the
    // driven-node voltage: the Fig. 3 style transfer starts at 1.
    circuit::ParametricSystem sys = varmor::testing::small_parametric_rc(20, 2, 72);
    auto freqs = log_frequencies(1e-6, 1e-5, 3);  // far below the corner
    auto sweep = sweep_full(sys, {0.0, 0.0}, freqs);
    auto ratio = voltage_transfer_series(sweep, 0, 1);
    EXPECT_NEAR(ratio[0], 1.0, 1e-6);
}

TEST(SeriesError, ExactMatchIsZero) {
    std::vector<double> a{1.0, 2.0, 3.0};
    auto err = series_error(a, a);
    EXPECT_EQ(err.max_rel, 0.0);
    EXPECT_EQ(err.rms_rel, 0.0);
}

TEST(SeriesError, KnownDeviation) {
    std::vector<double> ref{1.0, 2.0};
    std::vector<double> approx{1.0, 1.8};
    auto err = series_error(ref, approx);
    EXPECT_NEAR(err.max_rel, 0.1, 1e-12);  // 0.2 / max(ref)=2
}

TEST(SeriesError, MismatchedLengthThrows) {
    EXPECT_THROW(series_error({1.0}, {1.0, 2.0}), Error);
    EXPECT_THROW(series_error({}, {}), Error);
}

}  // namespace
}  // namespace varmor::analysis
