#include <cmath>
#include <gtest/gtest.h>

#include "analysis/monte_carlo.h"
#include "circuit/generators.h"
#include "circuit/mna.h"
#include "mor/lowrank_pmor.h"

namespace varmor::analysis {
namespace {

TEST(SampleParameters, RespectsTruncation) {
    MonteCarloOptions opts;
    opts.samples = 500;
    opts.sigma = 0.1;
    opts.truncate_sigmas = 3.0;
    auto samples = sample_parameters(3, opts);
    ASSERT_EQ(samples.size(), 500u);
    for (const auto& p : samples) {
        ASSERT_EQ(p.size(), 3u);
        for (double x : p) {
            EXPECT_LE(std::abs(x), 0.3 + 1e-12);  // 3 sigma bound
        }
    }
}

TEST(SampleParameters, EmpiricalMomentsReasonable) {
    MonteCarloOptions opts;
    opts.samples = 4000;
    opts.sigma = 0.1;
    auto samples = sample_parameters(1, opts);
    double mean = 0, var = 0;
    for (const auto& p : samples) mean += p[0];
    mean /= static_cast<double>(samples.size());
    for (const auto& p : samples) var += (p[0] - mean) * (p[0] - mean);
    var /= static_cast<double>(samples.size());
    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(std::sqrt(var), 0.1, 0.01);
}

TEST(SampleParameters, Deterministic) {
    MonteCarloOptions opts;
    opts.samples = 5;
    auto a = sample_parameters(2, opts);
    auto b = sample_parameters(2, opts);
    EXPECT_EQ(a, b);
}

TEST(Histogram, CountsSumToInputSize) {
    std::vector<double> v{0.1, 0.2, 0.3, 0.35, 0.9};
    Histogram h = make_histogram(v, 4);
    int total = 0;
    for (int c : h.counts) total += c;
    EXPECT_EQ(total, 5);
    EXPECT_EQ(h.edges.size(), 5u);
    EXPECT_DOUBLE_EQ(h.edges.front(), 0.1);
    EXPECT_DOUBLE_EQ(h.edges.back(), 0.9);
}

TEST(Histogram, ConstantValuesHandled) {
    std::vector<double> v{1.0, 1.0, 1.0};
    Histogram h = make_histogram(v, 3);
    int total = 0;
    for (int c : h.counts) total += c;
    EXPECT_EQ(total, 3);
}

TEST(Histogram, InvalidInputsThrow) {
    EXPECT_THROW(make_histogram({}, 3), Error);
    EXPECT_THROW(make_histogram({1.0}, 0), Error);
}

TEST(PoleErrorStudy, NoFinitePolesIsGuardedNotNaN) {
    // Purely resistive divider: C(p) = 0, so the full model has no finite
    // poles at any sample. The seed implementation divided by
    // flattened.size() unconditionally and returned mean_error = NaN here;
    // the study must instead record empty per-sample error lists and keep
    // the zero-initialized statistics.
    circuit::Netlist net(1);
    const int a = net.add_node();
    const int b = net.add_node();
    net.add_resistor(a, 0, 1.0, {0.2});
    net.add_resistor(a, b, 2.0, {0.1});
    net.add_resistor(b, 0, 3.0);
    net.add_port(a);
    circuit::ParametricSystem sys = assemble_mna(net);

    // Any dimensionally consistent 1-parameter reduced model: it is never
    // consulted because there are no full poles to match against.
    mor::ReducedModel rm;
    rm.g0 = la::Matrix{{1.0}};
    rm.c0 = la::Matrix{{1.0}};
    rm.dg = {la::Matrix(1, 1)};
    rm.dc = {la::Matrix(1, 1)};
    rm.b = la::Matrix{{1.0}};
    rm.l = la::Matrix{{1.0}};

    MonteCarloOptions mc;
    mc.samples = 4;
    const auto samples = sample_parameters(1, mc);
    const PoleErrorStudy study = pole_error_study(sys, rm, samples);
    ASSERT_EQ(study.errors.size(), samples.size());
    for (const auto& e : study.errors) EXPECT_TRUE(e.empty());
    EXPECT_TRUE(study.flattened.empty());
    EXPECT_FALSE(std::isnan(study.mean_error));
    EXPECT_EQ(study.mean_error, 0.0);
    EXPECT_EQ(study.max_error, 0.0);
}

TEST(PoleErrorStudy, SmallClockTreeStudyProducesTinyErrors) {
    // Miniature Fig. 5 protocol: MC over widths, reduced vs full dominant
    // poles. Errors must be small and finite.
    circuit::ParametricSystem sys =
        assemble_mna(circuit::clock_tree(circuit::rcnet_a_options()));
    mor::LowRankPmorOptions mopts;
    mopts.s_order = 4;
    mopts.param_order = 2;
    mopts.rank = 2;
    mor::LowRankPmorResult model = mor::lowrank_pmor(sys, mopts);

    MonteCarloOptions mc;
    mc.samples = 10;
    mc.sigma = 0.1;
    auto samples = sample_parameters(3, mc);

    PoleOptions popts;
    popts.count = 5;
    PoleErrorStudy study = pole_error_study(sys, model.model, samples, popts);
    EXPECT_EQ(study.errors.size(), 10u);
    EXPECT_EQ(study.flattened.size(), 50u);  // 10 samples x 5 poles
    EXPECT_LT(study.max_error, 0.01);        // paper: < 0.3% for RCNetB
    EXPECT_GE(study.mean_error, 0.0);
}

}  // namespace
}  // namespace varmor::analysis
