// util::ResultSlab — the slab-allocated result-channel arena under the
// serving layer's query tickets. Pinned here: the open → fulfil → get round
// trip for values and errors; the warm path recycles slots with ZERO slab
// growth; a stale channel (recycled slot, old generation) is rejected, never
// misdelivered; double fulfilment is tolerated (first answer wins); an
// abandoned ticket's slot recycles once the producer finishes; tickets
// outlive the slab that opened them; a Batch buffers fulfilments and lands
// them under one lock/one wake-up with the same tolerant semantics; and a
// concurrent producer/consumer storm delivers every value to exactly the
// right ticket.

#include <gtest/gtest.h>

#include <chrono>
#include <future>  // std::future_status — the ticket's wait_for vocabulary
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/result_slab.h"

namespace varmor::util {
namespace {

using IntSlab = ResultSlab<int>;

TEST(ResultSlab, OpenFulfilGetRoundTrip) {
    IntSlab slab;
    auto [ch, ticket] = slab.open();
    EXPECT_TRUE(ticket.valid());

    ResultSlabStats st = slab.stats();
    EXPECT_EQ(st.capacity, 1u);
    EXPECT_EQ(st.in_use, 1u);
    EXPECT_EQ(st.opened, 1);
    EXPECT_EQ(st.recycled, 0);

    EXPECT_TRUE(slab.set_value(ch, 42));
    EXPECT_EQ(ticket.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(ticket.get(), 42);
    EXPECT_FALSE(ticket.valid());  // one-shot: consumed

    st = slab.stats();
    EXPECT_EQ(st.in_use, 0u);
    EXPECT_EQ(st.recycled, 1);
}

TEST(ResultSlab, ErrorPathRethrowsTheProducersException) {
    IntSlab slab;
    auto [ch, ticket] = slab.open();
    EXPECT_TRUE(slab.set_error(
        ch, std::make_exception_ptr(std::runtime_error("lane failed"))));
    try {
        (void)ticket.get();
        FAIL() << "get() must rethrow the producer's error";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "lane failed");
    }
    EXPECT_FALSE(ticket.valid());
    EXPECT_EQ(slab.stats().in_use, 0u);  // error delivery recycles too
}

TEST(ResultSlab, WarmPathRecyclesWithoutGrowingTheSlab) {
    IntSlab slab;
    const int kEpochs = 100;
    for (int i = 0; i < kEpochs; ++i) {
        auto [ch, ticket] = slab.open();
        ASSERT_TRUE(slab.set_value(ch, i));
        ASSERT_EQ(ticket.get(), i);
    }
    const ResultSlabStats st = slab.stats();
    EXPECT_EQ(st.capacity, 1u);  // one slot served every epoch
    EXPECT_EQ(st.opened, kEpochs);
    EXPECT_EQ(st.recycled, kEpochs);
    EXPECT_EQ(st.in_use, 0u);
}

TEST(ResultSlab, StaleChannelIsRejectedNeverMisdelivered) {
    IntSlab slab;
    auto [old_ch, old_ticket] = slab.open();
    ASSERT_TRUE(slab.set_value(old_ch, 1));
    ASSERT_EQ(old_ticket.get(), 1);  // slot recycled, generation bumped

    // The recycled slot backs a NEW channel at the same index.
    auto [ch, ticket] = slab.open();
    ASSERT_EQ(ch.idx, old_ch.idx);
    ASSERT_NE(ch.gen, old_ch.gen);

    // A producer still holding the OLD handle must be rejected — its write
    // must never reach the new channel's consumer.
    EXPECT_FALSE(slab.set_value(old_ch, 999));
    EXPECT_EQ(ticket.wait_for(std::chrono::milliseconds(0)),
              std::future_status::timeout);

    EXPECT_TRUE(slab.set_value(ch, 2));
    EXPECT_EQ(ticket.get(), 2);

    // An out-of-range handle (never opened) is likewise rejected.
    EXPECT_FALSE(slab.set_value(IntSlab::Channel{1000, 0}, 7));
}

TEST(ResultSlab, DoubleFulfilmentIsToleratedFirstAnswerWins) {
    IntSlab slab;
    auto [ch, ticket] = slab.open();
    EXPECT_TRUE(slab.set_value(ch, 10));
    // The batch catch-all sweeping already-answered members: tolerated, false.
    EXPECT_FALSE(slab.set_value(ch, 20));
    EXPECT_FALSE(slab.set_error(
        ch, std::make_exception_ptr(std::runtime_error("late error"))));
    EXPECT_EQ(ticket.get(), 10);
}

TEST(ResultSlab, AbandonedTicketRecyclesOnceProducerFinishes) {
    IntSlab slab;
    auto pair = slab.open();
    { ResultTicket<int> doomed = std::move(pair.second); }  // consumer gone
    // The producer side is still live: the slot must NOT recycle yet (a
    // recycle now would let a new open() collide with the pending fulfil).
    EXPECT_EQ(slab.stats().in_use, 1u);
    EXPECT_TRUE(slab.set_value(pair.first, 5));  // fulfil into the void
    const ResultSlabStats st = slab.stats();
    EXPECT_EQ(st.in_use, 0u);
    EXPECT_EQ(st.recycled, 1);
}

TEST(ResultSlab, ProducerFirstThenAbandonedTicketRecycles) {
    IntSlab slab;
    auto pair = slab.open();
    ASSERT_TRUE(slab.set_value(pair.first, 5));
    EXPECT_EQ(slab.stats().in_use, 1u);  // the unconsumed value parks the slot
    { ResultTicket<int> doomed = std::move(pair.second); }
    EXPECT_EQ(slab.stats().in_use, 0u);
}

TEST(ResultSlab, WaitForTimesOutThenTurnsReady) {
    IntSlab slab;
    auto [ch, ticket] = slab.open();
    EXPECT_EQ(ticket.wait_for(std::chrono::milliseconds(10)),
              std::future_status::timeout);
    EXPECT_TRUE(ticket.valid());  // waiting does not consume
    EXPECT_TRUE(slab.set_value(ch, 3));
    EXPECT_EQ(ticket.wait_for(std::chrono::milliseconds(0)),
              std::future_status::ready);
    EXPECT_EQ(ticket.get(), 3);
    EXPECT_THROW((void)ticket.get(), Error);  // consumed: invalid
}

TEST(ResultSlab, MovedFromTicketIsInvalidAndMoveTargetCollects) {
    IntSlab slab;
    auto [ch, ticket] = slab.open();
    ResultTicket<int> target = std::move(ticket);
    EXPECT_FALSE(ticket.valid());
    EXPECT_TRUE(target.valid());
    EXPECT_TRUE(slab.set_value(ch, 11));
    EXPECT_EQ(target.get(), 11);
}

TEST(ResultSlab, TicketOutlivesTheSlabThatOpenedIt) {
    // A client holding a ticket across its batcher's destruction — the ticket
    // shares core ownership, so collection still works.
    ResultTicket<int> ticket;
    {
        IntSlab slab;
        auto pair = slab.open();
        ticket = std::move(pair.second);
        ASSERT_TRUE(slab.set_value(pair.first, 77));
    }  // slab handle destroyed
    EXPECT_EQ(ticket.get(), 77);
}

TEST(ResultSlab, ConcurrentProducersAndConsumersDeliverExactly) {
    IntSlab slab;
    const int kChannels = 64;
    const int kProducers = 4;
    const int kConsumers = 8;

    std::vector<IntSlab::Channel> channels;
    std::vector<ResultTicket<int>> tickets;
    for (int i = 0; i < kChannels; ++i) {
        auto [ch, t] = slab.open();
        channels.push_back(ch);
        tickets.push_back(std::move(t));
    }

    // Producers fulfil disjoint strided slices; consumers collect disjoint
    // contiguous slices — every ticket must see ITS channel's value.
    std::vector<std::thread> workers;
    for (int p = 0; p < kProducers; ++p)
        workers.emplace_back([&, p] {
            for (int i = p; i < kChannels; i += kProducers)
                EXPECT_TRUE(slab.set_value(channels[static_cast<std::size_t>(i)],
                                           1000 + i));
        });
    std::vector<std::vector<std::pair<int, int>>> seen(kConsumers);
    for (int c = 0; c < kConsumers; ++c)
        workers.emplace_back([&, c] {
            const int per = kChannels / kConsumers;
            for (int i = c * per; i < (c + 1) * per; ++i)
                seen[static_cast<std::size_t>(c)].emplace_back(
                    i, tickets[static_cast<std::size_t>(i)].get());
        });
    for (std::thread& w : workers) w.join();

    for (const auto& pairs : seen)
        for (const auto& [i, v] : pairs) EXPECT_EQ(v, 1000 + i);

    const ResultSlabStats st = slab.stats();
    EXPECT_EQ(st.opened, kChannels);
    EXPECT_EQ(st.recycled, kChannels);
    EXPECT_EQ(st.in_use, 0u);
    EXPECT_LE(st.capacity, static_cast<std::size_t>(kChannels));
}

TEST(ResultSlab, BatchCommitDeliversEveryBufferedResultAtOnce) {
    IntSlab slab;
    const int kChannels = 8;
    std::vector<IntSlab::Channel> channels;
    std::vector<ResultTicket<int>> tickets;
    for (int i = 0; i < kChannels; ++i) {
        auto [ch, t] = slab.open();
        channels.push_back(ch);
        tickets.push_back(std::move(t));
    }

    IntSlab::Batch batch(slab);
    for (int i = 0; i < kChannels - 1; ++i)
        batch.set_value(channels[static_cast<std::size_t>(i)], 100 + i);
    batch.set_error(channels[kChannels - 1],
                    std::make_exception_ptr(std::runtime_error("last fails")));
    // Nothing is visible before commit: the entries are buffered locally.
    EXPECT_EQ(tickets[0].wait_for(std::chrono::milliseconds(0)),
              std::future_status::timeout);
    batch.commit();

    for (int i = 0; i < kChannels - 1; ++i)
        EXPECT_EQ(tickets[static_cast<std::size_t>(i)].get(), 100 + i);
    EXPECT_THROW((void)tickets[kChannels - 1].get(), std::runtime_error);
    EXPECT_EQ(slab.stats().in_use, 0u);
}

TEST(ResultSlab, BatchKeepsTheTolerantFulfilmentSemantics) {
    IntSlab slab;
    auto [direct_ch, direct_ticket] = slab.open();
    ASSERT_TRUE(slab.set_value(direct_ch, 1));
    ASSERT_EQ(direct_ticket.get(), 1);  // recycled: direct_ch is now stale

    auto [ch, ticket] = slab.open();
    {
        // Destructor commits — a batch at task scope cannot strand channels.
        IntSlab::Batch batch(slab);
        batch.set_value(direct_ch, 999);  // stale: dropped at commit
        batch.set_value(ch, 5);
        batch.set_value(ch, 6);  // double fulfilment: first answer wins
    }
    EXPECT_EQ(ticket.get(), 5);
}

TEST(ResultSlab, MoveOnlyValueTypeMovesThroughTheSlot) {
    ResultSlab<std::unique_ptr<std::string>> slab;
    auto [ch, ticket] = slab.open();
    EXPECT_TRUE(slab.set_value(ch, std::make_unique<std::string>("payload")));
    const std::unique_ptr<std::string> got = ticket.get();
    ASSERT_TRUE(got != nullptr);
    EXPECT_EQ(*got, "payload");
}

}  // namespace
}  // namespace varmor::util
