#include <gtest/gtest.h>

#include "la/lu_dense.h"
#include "sparse/splu.h"
#include "test_helpers.h"

namespace varmor::sparse {
namespace {

using la::Matrix;
using la::Vector;
using la::ZVector;
using varmor::testing::random_matrix;

Csc random_sparse(int n, double density, util::Rng& rng, double diag_boost = 0.0) {
    Triplets t(n, n);
    for (int j = 0; j < n; ++j) {
        t.add(j, j, rng.uniform(1.0, 2.0) + diag_boost);
        for (int i = 0; i < n; ++i)
            if (i != j && rng.chance(density)) t.add(i, j, rng.uniform(-1.0, 1.0));
    }
    return Csc(t);
}

/// Tridiagonal ladder-like matrix, structurally close to RC-chain MNA.
Csc ladder_matrix(int n) {
    Triplets t(n, n);
    for (int i = 0; i < n; ++i) {
        t.add(i, i, 2.0 + 0.01 * i);
        if (i > 0) {
            t.add(i, i - 1, -1.0);
            t.add(i - 1, i, -1.0);
        }
    }
    return Csc(t);
}

TEST(SparseLu, SolvesHandComputedSystem) {
    Triplets t(2, 2);
    t.add(0, 0, 2.0);
    t.add(0, 1, 1.0);
    t.add(1, 0, 1.0);
    t.add(1, 1, 3.0);
    SparseLu lu{Csc(t)};
    Vector x = lu.solve(Vector{3.0, 4.0});
    EXPECT_NEAR(x[0], 1.0, 1e-13);
    EXPECT_NEAR(x[1], 1.0, 1e-13);
}

TEST(SparseLu, MatchesDenseLuOnRandomSystems) {
    util::Rng rng(1);
    for (int trial = 0; trial < 5; ++trial) {
        Csc a = random_sparse(30, 0.15, rng, 5.0);
        SparseLu lu(a);
        Vector b(30);
        for (int i = 0; i < 30; ++i) b[i] = rng.uniform(-1, 1);
        Vector xs = lu.solve(b);
        Vector xd = la::solve_dense(a.to_dense(), b);
        EXPECT_LE(la::norm2(xs - xd), 1e-9 * (1 + la::norm2(xd)));
    }
}

TEST(SparseLu, TransposeSolveMatchesDense) {
    util::Rng rng(2);
    Csc a = random_sparse(25, 0.2, rng, 4.0);
    SparseLu lu(a);
    Vector b(25);
    for (int i = 0; i < 25; ++i) b[i] = rng.uniform(-1, 1);
    Vector xs = lu.solve_transpose(b);
    Vector xd = la::solve_dense(la::transpose(a.to_dense()), b);
    EXPECT_LE(la::norm2(xs - xd), 1e-9 * (1 + la::norm2(xd)));
}

TEST(SparseLu, TransposeSolveConsistentWithApply) {
    util::Rng rng(3);
    Csc a = random_sparse(40, 0.1, rng, 6.0);
    SparseLu lu(a);
    Vector b(40);
    for (int i = 0; i < 40; ++i) b[i] = rng.uniform(-1, 1);
    Vector x = lu.solve_transpose(b);
    EXPECT_LE(la::norm2(a.apply_transpose(x) - b), 1e-9 * (1 + la::norm2(b)));
}

TEST(SparseLu, PivotingHandlesZeroDiagonal) {
    Triplets t(2, 2);
    t.add(0, 1, 1.0);
    t.add(1, 0, 1.0);
    SparseLu lu{Csc(t)};
    Vector x = lu.solve(Vector{2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-14);
    EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(SparseLu, SingularThrows) {
    Triplets t(2, 2);
    t.add(0, 0, 1.0);
    t.add(1, 0, 2.0);  // second column empty
    EXPECT_THROW(SparseLu{Csc(t)}, Error);
}

TEST(SparseLu, NumericallySingularThrows) {
    Triplets t(2, 2);
    t.add(0, 0, 1.0);
    t.add(0, 1, 2.0);
    t.add(1, 0, 2.0);
    t.add(1, 1, 4.0);  // rank 1
    EXPECT_THROW(SparseLu{Csc(t)}, Error);
}

TEST(SparseLu, ComplexPencilSolve) {
    util::Rng rng(4);
    Csc g = random_sparse(20, 0.15, rng, 3.0);
    Csc c = random_sparse(20, 0.15, rng, 1.0);
    const la::cplx s(0, 1.0);
    ZSparseLu lu(pencil(g, c, s));
    ZVector b(20);
    for (int i = 0; i < 20; ++i) b[i] = la::cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    ZVector x = lu.solve(b);
    ZVector r = pencil(g, c, s).apply(x) - b;
    EXPECT_LE(la::norm2(r), 1e-9 * (1 + la::norm2(b)));
}

class SpluOrderingProperty
    : public ::testing::TestWithParam<SparseLu::Options::Ordering> {};

TEST_P(SpluOrderingProperty, AllOrderingsGiveSameSolution) {
    util::Rng rng(5);
    Csc a = random_sparse(50, 0.08, rng, 6.0);
    SparseLu::Options opts;
    opts.ordering = GetParam();
    SparseLu lu(a, opts);
    Vector b(50);
    for (int i = 0; i < 50; ++i) b[i] = rng.uniform(-1, 1);
    Vector x = lu.solve(b);
    EXPECT_LE(la::norm2(a.apply(x) - b), 1e-8 * (1 + la::norm2(b)));
}

INSTANTIATE_TEST_SUITE_P(Orderings, SpluOrderingProperty,
                         ::testing::Values(SparseLu::Options::Ordering::min_degree,
                                           SparseLu::Options::Ordering::rcm,
                                           SparseLu::Options::Ordering::natural));

class SpluSizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(SpluSizeProperty, ResidualSmallAcrossSizes) {
    const int n = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(n));
    Csc a = random_sparse(n, 4.0 / n, rng, 3.0);
    SparseLu lu(a);
    Vector b(n);
    for (int i = 0; i < n; ++i) b[i] = rng.uniform(-1, 1);
    Vector x = lu.solve(b);
    EXPECT_LE(la::norm2(a.apply(x) - b), 1e-8 * (1 + la::norm2(b)));
    // Transpose path too.
    Vector xt = lu.solve_transpose(b);
    EXPECT_LE(la::norm2(a.apply_transpose(xt) - b), 1e-8 * (1 + la::norm2(b)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpluSizeProperty,
                         ::testing::Values(1, 2, 3, 10, 50, 200, 500, 1000));

TEST(SparseLu, LadderFillStaysLinear) {
    // A tridiagonal system must factor with O(n) fill under min-degree.
    const int n = 500;
    SparseLu lu(ladder_matrix(n));
    EXPECT_LE(lu.nnz_l() + lu.nnz_u(), 6 * n);
}

TEST(SparseLu, MultipleRhsMatrixSolve) {
    util::Rng rng(6);
    Csc a = random_sparse(15, 0.2, rng, 4.0);
    SparseLu lu(a);
    Matrix b = random_matrix(15, 4, rng);
    Matrix x = lu.solve(b);
    varmor::testing::expect_near(a.apply(x), b, 1e-9);
}

TEST(SparseLu, BlockedMatrixSolveBitIdenticalToVectorSolves) {
    // The blocked multi-RHS path must run the identical operation sequence
    // per column as solo solves — including past the 8-wide block boundary.
    util::Rng rng(7);
    Csc a = random_sparse(30, 0.15, rng, 4.0);
    SparseLu lu(a);
    Matrix b = random_matrix(30, 11, rng);
    Matrix x = lu.solve(b);
    for (int j = 0; j < b.cols(); ++j) {
        const Vector xj = lu.solve(b.col(j));
        for (int i = 0; i < 30; ++i) EXPECT_EQ(x(i, j), xj[i]) << i << "," << j;
    }
}

TEST(SparseLu, ComplexBlockedMatrixSolveBitIdenticalToVectorSolves) {
    // Same contract as the real-valued blocked test, on the complex pencil
    // factorization the frequency sweeps actually batch through.
    util::Rng rng(9);
    Csc g = random_sparse(24, 0.15, rng, 3.0);
    Csc c = random_sparse(24, 0.15, rng, 1.0);
    ZSparseLu lu(pencil(g, c, la::cplx(0.0, 2.0)));
    la::ZMatrix b(24, 11);
    for (int j = 0; j < b.cols(); ++j)
        for (int i = 0; i < b.rows(); ++i)
            b(i, j) = la::cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    la::ZMatrix x = lu.solve(b);
    for (int j = 0; j < b.cols(); ++j) {
        const la::ZVector xj = lu.solve(b.col(j));
        for (int i = 0; i < b.rows(); ++i) EXPECT_EQ(x(i, j), xj[i]) << i << "," << j;
    }
}

TEST(SparseLu, NonSquareThrows) {
    Triplets t(2, 3);
    t.add(0, 0, 1.0);
    EXPECT_THROW(SparseLu{Csc(t)}, Error);
}

}  // namespace
}  // namespace varmor::sparse
