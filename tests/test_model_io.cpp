#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "la/ops.h"
#include "mor/lowrank_pmor.h"
#include "mor/model_io.h"
#include "mor_test_utils.h"

namespace varmor::mor {
namespace {

using varmor::testing::small_parametric_rc;

ReducedModel make_model() {
    circuit::ParametricSystem sys = small_parametric_rc(25, 2, 401);
    LowRankPmorOptions opts;
    opts.s_order = 3;
    opts.param_order = 2;
    return lowrank_pmor(sys, opts).model;
}

TEST(ModelIo, RoundTripPreservesEverything) {
    ReducedModel original = make_model();
    std::ostringstream os;
    write_model(original, os);
    std::istringstream is(os.str());
    ReducedModel loaded = read_model(is);

    ASSERT_EQ(loaded.size(), original.size());
    ASSERT_EQ(loaded.num_ports(), original.num_ports());
    ASSERT_EQ(loaded.num_params(), original.num_params());
    EXPECT_EQ(la::norm_max(loaded.g0 - original.g0), 0.0);
    EXPECT_EQ(la::norm_max(loaded.c0 - original.c0), 0.0);
    for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(la::norm_max(loaded.dg[static_cast<std::size_t>(i)] -
                               original.dg[static_cast<std::size_t>(i)]),
                  0.0);
        EXPECT_EQ(la::norm_max(loaded.dc[static_cast<std::size_t>(i)] -
                               original.dc[static_cast<std::size_t>(i)]),
                  0.0);
    }

    // Behavioural equality: same transfer function at an arbitrary point.
    const la::cplx s(0.0, 0.7);
    const std::vector<double> p{0.4, -0.6};
    EXPECT_EQ(la::norm_max(loaded.transfer(s, p) - original.transfer(s, p)), 0.0);
}

TEST(ModelIo, FileRoundTrip) {
    ReducedModel original = make_model();
    const std::string path = ::testing::TempDir() + "/model.rom";
    write_model_file(original, path);
    ReducedModel loaded = read_model_file(path);
    EXPECT_EQ(loaded.size(), original.size());
    EXPECT_THROW(read_model_file("/nonexistent/model.rom"), Error);
    EXPECT_THROW(write_model_file(original, "/nonexistent/dir/model.rom"), Error);
}

TEST(ModelIo, MalformedInputsThrow) {
    auto parse = [](const std::string& text) {
        std::istringstream is(text);
        return read_model(is);
    };
    EXPECT_THROW(parse(""), Error);
    EXPECT_THROW(parse("wrong-magic 1\n"), Error);
    EXPECT_THROW(parse("varmor-rom 3\nsize 1 ports 1 params 0\n"), Error);  // version
    EXPECT_THROW(parse("varmor-rom 2\nsize 1 ports 1 params 0\n"), Error);  // missing meta
    EXPECT_THROW(parse("varmor-rom 1\nsize 0 ports 1 params 0\n"), Error);  // dims
    EXPECT_THROW(parse("varmor-rom 1\nsize 1 ports 1 params 0\nG0 1.0\n"), Error);  // truncated
    // Wrong section order.
    EXPECT_THROW(parse("varmor-rom 1\nsize 1 ports 1 params 0\nC0 1.0\n"), Error);
}

TEST(ModelIo, Version1FilesStillReadable) {
    // A pre-metadata file (no meta line): parses, and reports empty meta.
    const std::string v1 =
        "varmor-rom 1\nsize 1 ports 1 params 0\nG0 2.0\nC0 1.0\nB 1.0\nL 1.0\n";
    std::istringstream is(v1);
    ModelMeta meta;
    meta.cache_key = "stale";
    meta.content_hash = 7;
    const ReducedModel m = read_model(is, &meta);
    EXPECT_EQ(m.size(), 1);
    EXPECT_TRUE(meta.cache_key.empty());
    EXPECT_EQ(meta.content_hash, 0u);
}

TEST(ModelIo, MetaAndContentHashRoundTrip) {
    const ReducedModel original = make_model();
    const std::uint64_t hash = model_content_hash(original);
    EXPECT_NE(hash, 0u);

    ModelMeta meta;
    meta.cache_key = "deadbeefdeadbeef";
    std::ostringstream os;
    write_model(original, os, &meta);
    std::istringstream is(os.str());
    ModelMeta loaded_meta;
    const ReducedModel loaded = read_model(is, &loaded_meta);

    // The persisted hash is recomputed at write time, and the 17-digit text
    // format round-trips doubles exactly — so the hash of the LOADED model
    // equals both the original's hash and the recorded meta hash. This is
    // the invariant the disk cache tier's integrity check relies on.
    EXPECT_EQ(loaded_meta.cache_key, "deadbeefdeadbeef");
    EXPECT_EQ(loaded_meta.content_hash, hash);
    EXPECT_EQ(model_content_hash(loaded), hash);

    // Bitwise sensitivity: one ulp in one entry changes the hash.
    ReducedModel tweaked = original;
    tweaked.g0(0, 0) = std::nextafter(tweaked.g0(0, 0), 1e300);
    EXPECT_NE(model_content_hash(tweaked), hash);
}

TEST(ModelIo, ZeroParameterModelSupported) {
    circuit::ParametricSystem sys = small_parametric_rc(10, 0, 402, 1);
    ReducedModel m = project(sys, la::Matrix::identity(10));
    std::ostringstream os;
    write_model(m, os);
    std::istringstream is(os.str());
    ReducedModel loaded = read_model(is);
    EXPECT_EQ(loaded.num_params(), 0);
    EXPECT_EQ(loaded.size(), 10);
}

}  // namespace
}  // namespace varmor::mor
