#include <gtest/gtest.h>

#include "analysis/poles.h"
#include "circuit/generators.h"
#include "circuit/mna.h"
#include "mor/lowrank_pmor.h"
#include "mor_test_utils.h"

namespace varmor::analysis {
namespace {

using la::cplx;

TEST(Poles, SingleRcAnalyticPole) {
    circuit::Netlist net;
    const int a = net.add_node();
    net.add_resistor(a, 0, 2.0);
    net.add_capacitor(a, 0, 0.5);
    net.add_port(a);
    circuit::ParametricSystem sys = assemble_mna(net);
    auto poles = dominant_poles(sys.g0, sys.c0, {});
    ASSERT_GE(poles.size(), 1u);
    EXPECT_NEAR(poles[0].real(), -1.0, 1e-10);  // -g/c = -(0.5)/(0.5)
}

TEST(Poles, ArnoldiMatchesDenseOnMediumRcTree) {
    circuit::RandomRcOptions o;
    o.unknowns = 300;
    circuit::ParametricSystem sys = assemble_mna(circuit::random_rc_net(o));

    PoleOptions dense_opts;
    dense_opts.use_dense = true;
    dense_opts.count = 5;
    auto exact = dominant_poles(sys.g0, sys.c0, dense_opts);

    PoleOptions arnoldi_opts;
    arnoldi_opts.count = 5;
    arnoldi_opts.subspace = 70;
    auto approx = dominant_poles(sys.g0, sys.c0, arnoldi_opts);

    ASSERT_EQ(exact.size(), approx.size());
    for (std::size_t i = 0; i < exact.size(); ++i)
        EXPECT_LE(std::abs(exact[i] - approx[i]), 1e-5 * std::abs(exact[i]))
            << "pole " << i;
}

TEST(Poles, DominanceOrdering) {
    circuit::ParametricSystem sys =
        assemble_mna(circuit::clock_tree(circuit::rcnet_a_options()));
    auto poles = dominant_poles(sys.g0, sys.c0, {});
    for (std::size_t i = 0; i + 1 < poles.size(); ++i)
        EXPECT_LE(std::abs(poles[i]), std::abs(poles[i + 1]) * (1 + 1e-9));
}

TEST(Poles, ReducedModelTracksFullPolesOnClockTree) {
    circuit::ParametricSystem sys =
        assemble_mna(circuit::clock_tree(circuit::rcnet_a_options()));
    mor::LowRankPmorOptions opts;
    opts.s_order = 4;
    opts.param_order = 2;
    opts.rank = 2;  // see EXPERIMENTS.md: our per-layer width parameters need rank 2
    mor::LowRankPmorResult r = mor::lowrank_pmor(sys, opts);

    const std::vector<double> p{0.15, -0.2, 0.1};
    PoleOptions popts;
    popts.count = 5;
    auto full = dominant_poles_at(sys, p, popts);
    auto reduced = dominant_poles_reduced(r.model, p, 10);
    auto errors = pole_match_errors(full, reduced);
    for (double e : errors) EXPECT_LT(e, 5e-3);  // paper reports < 0.3%
}

TEST(PoleMatch, PairsGreedilyByCloseness) {
    std::vector<cplx> full{cplx(-1, 0), cplx(-2, 0)};
    std::vector<cplx> reduced{cplx(-2.02, 0), cplx(-1.01, 0)};
    auto errors = pole_match_errors(full, reduced);
    ASSERT_EQ(errors.size(), 2u);
    EXPECT_NEAR(errors[0], 0.01, 1e-12);
    EXPECT_NEAR(errors[1], 0.01, 1e-12);
}

TEST(PoleMatch, MissingReducedPoleGivesInfiniteError) {
    std::vector<cplx> full{cplx(-1, 0), cplx(-2, 0)};
    std::vector<cplx> reduced{cplx(-1, 0)};
    auto errors = pole_match_errors(full, reduced);
    EXPECT_TRUE(std::isinf(errors[1]));
}

TEST(Poles, InvalidCountThrows) {
    circuit::ParametricSystem sys = varmor::testing::small_parametric_rc(10, 0, 81, 1);
    PoleOptions bad;
    bad.count = 0;
    EXPECT_THROW(dominant_poles(sys.g0, sys.c0, bad), Error);
}

}  // namespace
}  // namespace varmor::analysis
