// Property sweeps over the workload generators: sizes, determinism,
// passivity and spectral sanity across the configuration space.

#include <gtest/gtest.h>

#include "analysis/poles.h"
#include "circuit/generators.h"
#include "circuit/mna.h"
#include "mor/passivity.h"
#include "util/constants.h"

namespace varmor::circuit {
namespace {

class RandomRcSizes : public ::testing::TestWithParam<int> {};

TEST_P(RandomRcSizes, ExactUnknownCountAndPassivity) {
    RandomRcOptions o;
    o.unknowns = GetParam();
    ParametricSystem sys = assemble_mna(random_rc_net(o));
    EXPECT_EQ(sys.size(), GetParam());
    EXPECT_TRUE(mor::check_passivity(sys, {0.0, 0.0}).passive());
    // Dominant pole must be strictly stable.
    analysis::PoleOptions popts;
    popts.count = 1;
    auto poles = analysis::dominant_poles_at(sys, {0.0, 0.0}, popts);
    ASSERT_FALSE(poles.empty());
    EXPECT_LT(poles[0].real(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomRcSizes, ::testing::Values(10, 50, 200, 767));

class RcSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RcSeedProperty, DifferentSeedsGiveDifferentButValidNets) {
    RandomRcOptions a, b;
    a.unknowns = b.unknowns = 60;
    a.seed = GetParam();
    b.seed = GetParam() + 1;
    ParametricSystem sa = assemble_mna(random_rc_net(a));
    ParametricSystem sb = assemble_mna(random_rc_net(b));
    EXPECT_EQ(sa.size(), sb.size());
    // Values differ somewhere.
    bool differs = sa.g0.nnz() != sb.g0.nnz();
    if (!differs)
        for (int i = 0; i < sa.g0.nnz() && !differs; ++i)
            differs = sa.g0.values()[static_cast<std::size_t>(i)] !=
                      sb.g0.values()[static_cast<std::size_t>(i)];
    EXPECT_TRUE(differs);
    EXPECT_TRUE(mor::check_passivity(sb, {0.5, -0.5}).passive());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcSeedProperty, ::testing::Values(1u, 77u, 2005u));

class BusSegments : public ::testing::TestWithParam<int> {};

TEST_P(BusSegments, SizeFormulaHolds) {
    RlcBusOptions o;
    o.segments_per_line = GetParam();
    ParametricSystem sys = assemble_mna(coupled_rlc_bus(o));
    // 2 lines x (s+1 main + s interior) nodes + 2 s inductor currents.
    const int s = GetParam();
    EXPECT_EQ(sys.size(), 2 * (2 * s + 1) + 2 * s);
    EXPECT_EQ(sys.num_ports(), 4);
}

INSTANTIATE_TEST_SUITE_P(Segments, BusSegments, ::testing::Values(1, 5, 30, 180));

class TreeTargets : public ::testing::TestWithParam<int> {};

TEST_P(TreeTargets, HitsArbitraryNodeTargets) {
    ClockTreeOptions o = rcnet_a_options();
    o.target_nodes = GetParam();
    ParametricSystem sys = assemble_mna(clock_tree(o));
    EXPECT_EQ(sys.size(), GetParam());
    EXPECT_TRUE(mor::check_passivity(sys, {0.3, -0.3, 0.3}).passive());
}

INSTANTIATE_TEST_SUITE_P(Targets, TreeTargets, ::testing::Values(78, 90, 120, 200));

TEST(GeneratorsProperty, ClockTreePolesSpreadAcrossDecade) {
    // Realistic RC trees have clustered-but-distinct dominant time
    // constants; a degenerate generator would collapse them.
    ParametricSystem sys = assemble_mna(clock_tree(rcnet_b_options()));
    analysis::PoleOptions popts;
    popts.count = 5;
    popts.subspace = 90;
    auto poles = analysis::dominant_poles_at(sys, {0.0, 0.0, 0.0}, popts);
    ASSERT_EQ(poles.size(), 5u);
    EXPECT_GT(std::abs(poles[4]) / std::abs(poles[0]), 2.0);
    EXPECT_LT(std::abs(poles[4]) / std::abs(poles[0]), 1e4);
}

TEST(GeneratorsProperty, BusFrequencyScaleInBenchWindow) {
    // The paper plots 0.5..4.5e10 Hz; the bus must have dynamics there:
    // dominant pole below 4.5e10 * 2 pi and above 1e8 * 2 pi.
    RlcBusOptions o;
    o.segments_per_line = 60;
    ParametricSystem sys = assemble_mna(coupled_rlc_bus(o));
    analysis::PoleOptions popts;
    popts.count = 1;
    popts.subspace = 80;
    auto poles = analysis::dominant_poles_at(sys, {0.0, 0.0}, popts);
    ASSERT_FALSE(poles.empty());
    const double mag = std::abs(poles[0]);
    EXPECT_GT(mag, util::two_pi_f(1e7));
    EXPECT_LT(mag, util::two_pi_f(1e11));
}

}  // namespace
}  // namespace varmor::circuit
