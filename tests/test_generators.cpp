#include <gtest/gtest.h>

#include "circuit/generators.h"
#include "circuit/mna.h"
#include "mor/passivity.h"

namespace varmor::circuit {
namespace {

TEST(RandomRcNet, MatchesPaperSize) {
    ParametricSystem sys = assemble_mna(random_rc_net());
    EXPECT_EQ(sys.size(), 767);       // "an RC network of 767 circuit unknowns"
    EXPECT_EQ(sys.num_params(), 2);   // "two independent variational sources"
    EXPECT_EQ(sys.num_ports(), 2);    // input + observation node
}

TEST(RandomRcNet, Deterministic) {
    RandomRcOptions o;
    o.unknowns = 50;
    ParametricSystem a = assemble_mna(random_rc_net(o));
    ParametricSystem b = assemble_mna(random_rc_net(o));
    EXPECT_EQ(a.g0.nnz(), b.g0.nnz());
    for (int i = 0; i < a.g0.nnz(); ++i)
        EXPECT_EQ(a.g0.values()[static_cast<std::size_t>(i)],
                  b.g0.values()[static_cast<std::size_t>(i)]);
}

TEST(RandomRcNet, SensitivitiesBoundedSoPerturbedSystemStaysPassive) {
    RandomRcOptions o;
    o.unknowns = 80;
    ParametricSystem sys = assemble_mna(random_rc_net(o));
    // Worst-case corner inside |p_i| <= 1 must remain passive (all element
    // values positive because sens_span < 0.5 per parameter).
    for (double corner : {-1.0, 1.0}) {
        auto report = mor::check_passivity(sys, {corner, -corner});
        EXPECT_TRUE(report.passive())
            << "min eig G_sym = " << report.min_eig_g_sym;
    }
}

TEST(RlcBus, MatchesPaperSize) {
    ParametricSystem sys = assemble_mna(coupled_rlc_bus());
    // 2 lines x (181 main + 180 interior nodes) + 2 x 180 inductor currents
    // = 1082, the paper's "size of MNA formulation ... is 1086" bus.
    EXPECT_EQ(sys.size(), 1082);
    EXPECT_EQ(sys.num_ports(), 4);    // "coupled 4-port RLC network"
    EXPECT_EQ(sys.num_params(), 2);
}

TEST(RlcBus, SmallBusPassiveAtNominalAndPerturbed) {
    RlcBusOptions o;
    o.segments_per_line = 10;
    ParametricSystem sys = assemble_mna(coupled_rlc_bus(o));
    EXPECT_TRUE(mor::check_passivity(sys, {0.0, 0.0}).passive());
    EXPECT_TRUE(mor::check_passivity(sys, {0.3, -0.3}).passive());
    EXPECT_TRUE(mor::check_passivity(sys, {-0.3, 0.3}).passive());
}

TEST(RlcBus, HasInductorsAndCoupling) {
    RlcBusOptions o;
    o.segments_per_line = 5;
    Netlist net = coupled_rlc_bus(o);
    EXPECT_EQ(net.num_inductors(), 10);  // 2 lines x 5 segments
    int caps_between_nonground_nodes = 0;
    for (const Element& e : net.elements())
        if (e.kind == ElementKind::capacitor && e.node_a != 0 && e.node_b != 0)
            ++caps_between_nonground_nodes;
    EXPECT_EQ(caps_between_nonground_nodes, 6);  // coupling at k = 0..5
}

TEST(ClockTree, RcNetAHas78Nodes) {
    ParametricSystem sys = assemble_mna(clock_tree(rcnet_a_options()));
    EXPECT_EQ(sys.size(), 78);       // "RCNetA has 78 nodes"
    EXPECT_EQ(sys.num_params(), 3);  // M5/M6/M7 width variations
}

TEST(ClockTree, RcNetBHas333Nodes) {
    ParametricSystem sys = assemble_mna(clock_tree(rcnet_b_options()));
    EXPECT_EQ(sys.size(), 333);      // "RCNetB 333"
    EXPECT_EQ(sys.num_params(), 3);
}

TEST(ClockTree, EveryLayerParameterTouchesTheSystem) {
    ParametricSystem sys = assemble_mna(clock_tree(rcnet_a_options()));
    for (int i = 0; i < 3; ++i) {
        EXPECT_GT(sys.dg[static_cast<std::size_t>(i)].nnz(), 0) << "layer " << i;
        EXPECT_GT(sys.dc[static_cast<std::size_t>(i)].nnz(), 0) << "layer " << i;
    }
}

TEST(ClockTree, PassiveAcrossWidthCorners) {
    ParametricSystem sys = assemble_mna(clock_tree(rcnet_a_options()));
    for (double w5 : {-0.3, 0.3})
        for (double w6 : {-0.3, 0.3})
            EXPECT_TRUE(mor::check_passivity(sys, {w5, w6, 0.3}).passive());
}

TEST(ClockTree, ImpossibleTargetThrows) {
    ClockTreeOptions o;
    o.target_nodes = 10;  // smaller than the bare tree
    o.depth = 3;
    o.level0_length = 600e-6;
    EXPECT_THROW(clock_tree(o), Error);
}

TEST(ClockTree, AffineWidthModelIsExactForConductance) {
    // g(p) = g0 (1 + p) exactly for wires on a single layer: compare the
    // parametric assembly against a re-extracted tree at perturbed width.
    // (Only conductances and area caps vary; the model is exact, which is
    // why the paper's pole errors in Figs. 5-6 are purely MOR error.)
    ClockTreeOptions o = rcnet_a_options();
    ParametricSystem sys = assemble_mna(clock_tree(o));
    const std::vector<double> p{0.2, -0.1, 0.05};
    sparse::Csc g = sys.g_at(p);
    // Sanity: diagonal stays positive (passivity of the perturbed model).
    la::Matrix gd = g.to_dense();
    for (int i = 0; i < gd.rows(); ++i) EXPECT_GT(gd(i, i), 0.0);
}

}  // namespace
}  // namespace varmor::circuit
