// Runtime behavior of the annotated locking primitives (util/thread_annotations.h).
//
// The static half of their contract — that Clang's -Wthread-safety rejects
// unguarded access to GUARDED_BY fields and lock-less calls to REQUIRES
// methods — lives in tests/static_asserts/ as negative-compile tests. This
// file is the dynamic half: the wrappers must behave exactly like the
// std::mutex / std::condition_variable they wrap, under contention and under
// TSan (the concurrency label puts this suite in the TSan CI job).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace {

using varmor::util::CondVar;
using varmor::util::Mutex;
using varmor::util::MutexLock;

struct GuardedCounter {
    Mutex mu;
    long value GUARDED_BY(mu) = 0;
};

TEST(ThreadAnnotations, MutexLockExcludesConcurrentIncrements) {
    GuardedCounter counter;
    constexpr int kThreads = 8;
    constexpr int kIncrements = 2000;

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&] {
            for (int i = 0; i < kIncrements; ++i) {
                MutexLock lock(counter.mu);
                ++counter.value;
            }
        });
    for (std::thread& w : workers) w.join();

    MutexLock lock(counter.mu);
    EXPECT_EQ(counter.value, static_cast<long>(kThreads) * kIncrements);
}

struct SignalledState {
    Mutex mu;
    CondVar cv;
    bool ready GUARDED_BY(mu) = false;
    int observed GUARDED_BY(mu) = 0;
};

TEST(ThreadAnnotations, CondVarWaitLoopObservesNotifiedState) {
    SignalledState state;

    std::thread waiter([&] {
        MutexLock lock(state.mu);
        while (!state.ready) state.cv.wait(state.mu);
        state.observed = 42;
    });
    {
        MutexLock lock(state.mu);
        state.ready = true;
    }
    state.cv.notify_one();
    waiter.join();

    MutexLock lock(state.mu);
    EXPECT_EQ(state.observed, 42);
}

TEST(ThreadAnnotations, CondVarWaitUntilTimesOutWhenNeverNotified) {
    Mutex mu;
    CondVar cv;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(20);

    MutexLock lock(mu);
    // Spurious wakeups may return no_timeout early; the loop shape every
    // call site uses reaches the timeout verdict regardless.
    std::cv_status status = std::cv_status::no_timeout;
    while (std::chrono::steady_clock::now() < deadline)
        status = cv.wait_until(mu, deadline);
    EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(ThreadAnnotations, TryLockFailsWhileHeldElsewhereAndSucceedsAfter) {
    Mutex mu;
    mu.lock();
    std::thread prober([&] {
        // The analysis tracks a TRY_ACQUIRE result through a local bool and
        // the branch on it — the shape every conditional-lock call site
        // must use to stay warning-clean.
        const bool acquired = mu.try_lock();
        EXPECT_FALSE(acquired);
        if (acquired) mu.unlock();
    });
    prober.join();
    mu.unlock();

    const bool acquired = mu.try_lock();
    EXPECT_TRUE(acquired);
    if (acquired) mu.unlock();
}

TEST(ThreadAnnotations, NativeHandleIsTheSameLock) {
    // native() exposes the wrapped std::mutex for interop; locking through
    // it must exclude the annotated interface (it IS the same lock, which
    // the RETURN_CAPABILITY annotation states to the analysis).
    Mutex mu;
    mu.native().lock();
    std::thread prober([&] {
        const bool acquired = mu.try_lock();
        EXPECT_FALSE(acquired);
        if (acquired) mu.unlock();
    });
    prober.join();
    mu.native().unlock();

    const bool acquired = mu.try_lock();
    EXPECT_TRUE(acquired);
    if (acquired) mu.unlock();
}

}  // namespace
