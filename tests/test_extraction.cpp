#include <gtest/gtest.h>

#include "circuit/extraction.h"

namespace varmor::circuit {
namespace {

TEST(Extraction, DefaultTechHasThreeLayers) {
    Technology t = default_tech();
    ASSERT_EQ(t.num_layers(), 3);
    EXPECT_EQ(t.layer(0).name, "M5");
    EXPECT_EQ(t.layer(1).name, "M6");
    EXPECT_EQ(t.layer(2).name, "M7");
    EXPECT_THROW(t.layer(3), Error);
}

TEST(Extraction, UpperLayersAreThickerAndLessResistive) {
    Technology t = default_tech();
    EXPECT_GT(t.layer(0).sheet_res, t.layer(2).sheet_res);
    EXPECT_LT(t.layer(0).nominal_width, t.layer(2).nominal_width);
}

TEST(Extraction, ResistanceScalesWithGeometry) {
    // Keep the Technology alive: layer() returns a reference into it, so
    // binding it off a default_tech() temporary dangles (caught by ASan).
    const Technology tech = default_tech();
    const Layer& m5 = tech.layer(0);
    WireRc rc1 = extract_wire(m5, 100e-6, 0.0);
    WireRc rc2 = extract_wire(m5, 200e-6, 0.0);
    EXPECT_NEAR(rc2.resistance, 2.0 * rc1.resistance, 1e-9);
    // Wider wire -> lower resistance.
    WireRc wide = extract_wire(m5, 100e-6, 0.1 * m5.nominal_width);
    EXPECT_LT(wide.resistance, rc1.resistance);
    // Wider wire -> higher ground cap.
    EXPECT_GT(extract_wire(m5, 100e-6, 0.1 * m5.nominal_width).cap_ground, rc1.cap_ground);
}

TEST(Extraction, CouplingGrowsWhenSpacingShrinks) {
    const Technology tech = default_tech();
    const Layer& m6 = tech.layer(1);
    WireRc nom = extract_wire(m6, 100e-6, 0.0, true);
    WireRc wide = extract_wire(m6, 100e-6, 0.1 * m6.nominal_width, true);
    EXPECT_GT(nom.cap_coupling, 0.0);
    EXPECT_GT(wide.cap_coupling, nom.cap_coupling);
    EXPECT_EQ(extract_wire(m6, 100e-6, 0.0, false).cap_coupling, 0.0);
}

TEST(Extraction, InvalidGeometryThrows) {
    const Technology tech = default_tech();
    const Layer& m5 = tech.layer(0);
    EXPECT_THROW(extract_wire(m5, 0.0, 0.0), Error);
    EXPECT_THROW(extract_wire(m5, 100e-6, -2.0 * m5.nominal_width), Error);
    // Width so large the spacing collapses.
    EXPECT_THROW(extract_wire(m5, 100e-6, m5.nominal_pitch, true), Error);
}

/// The paper obtains sensitivities "by performing multiple parasitic
/// extractions" — the analytic derivatives must agree with central finite
/// differences of the extraction itself.
class ExtractionFdProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExtractionFdProperty, AnalyticDerivativesMatchFiniteDifference) {
    const Technology tech = default_tech();
    const Layer& layer = tech.layer(GetParam());
    const double len = 120e-6;
    const double h = 1e-4 * layer.nominal_width;

    for (bool coupled : {false, true}) {
        WireRc plus = extract_wire(layer, len, h, coupled);
        WireRc minus = extract_wire(layer, len, -h, coupled);
        WireSensitivity s = extract_wire_sensitivity(layer, len, coupled);

        const double fd_dg =
            (1.0 / plus.resistance - 1.0 / minus.resistance) / (2.0 * h);
        EXPECT_NEAR(s.dconductance_dw, fd_dg, 1e-4 * std::abs(fd_dg));

        const double fd_dcg = (plus.cap_ground - minus.cap_ground) / (2.0 * h);
        EXPECT_NEAR(s.dcap_ground_dw, fd_dcg, 1e-6 * std::abs(fd_dcg) + 1e-30);

        if (coupled) {
            const double fd_dcc = (plus.cap_coupling - minus.cap_coupling) / (2.0 * h);
            EXPECT_NEAR(s.dcap_coupling_dw, fd_dcc, 1e-4 * std::abs(fd_dcc));
        } else {
            EXPECT_EQ(s.dcap_coupling_dw, 0.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Layers, ExtractionFdProperty, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace varmor::circuit
