#include <gtest/gtest.h>

#include "la/orth.h"
#include "la/svd.h"
#include "test_helpers.h"

namespace varmor::la {
namespace {

using testing::expect_near;
using testing::random_matrix;

TEST(Svd, DiagonalMatrix) {
    Matrix a{{3.0, 0.0}, {0.0, 4.0}};
    SvdResult f = svd(a);
    EXPECT_NEAR(f.s[0], 4.0, 1e-13);
    EXPECT_NEAR(f.s[1], 3.0, 1e-13);
}

TEST(Svd, KnownRankOneMatrix) {
    // A = u v^T with |u| = sqrt(2), |v| = sqrt(5): sigma = sqrt(10).
    Matrix a(2, 2);
    const double u[2] = {1.0, 1.0};
    const double v[2] = {1.0, 2.0};
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j) a(i, j) = u[i] * v[j];
    SvdResult f = svd(a);
    EXPECT_NEAR(f.s[0], std::sqrt(10.0), 1e-12);
    EXPECT_NEAR(f.s[1], 0.0, 1e-12);
}

TEST(Svd, ReconstructionTallMatrix) {
    util::Rng rng(1);
    Matrix a = random_matrix(12, 5, rng);
    SvdResult f = svd(a);
    expect_near(svd_reconstruct(f), a, 1e-11, "SVD reconstruction");
}

TEST(Svd, ReconstructionWideMatrix) {
    util::Rng rng(2);
    Matrix a = random_matrix(4, 9, rng);
    SvdResult f = svd(a);
    expect_near(svd_reconstruct(f), a, 1e-11, "wide SVD reconstruction");
}

TEST(Svd, FactorsAreOrthonormal) {
    util::Rng rng(3);
    Matrix a = random_matrix(10, 6, rng);
    SvdResult f = svd(a);
    EXPECT_LE(orthonormality_error(f.u), 1e-11);
    EXPECT_LE(orthonormality_error(f.v), 1e-11);
}

TEST(Svd, SingularValuesSortedDescendingAndNonnegative) {
    util::Rng rng(4);
    Matrix a = random_matrix(9, 9, rng);
    SvdResult f = svd(a);
    for (std::size_t i = 0; i + 1 < f.s.size(); ++i) EXPECT_GE(f.s[i], f.s[i + 1]);
    for (double s : f.s) EXPECT_GE(s, 0.0);
}

TEST(Svd, MatchesFrobeniusNorm) {
    util::Rng rng(5);
    Matrix a = random_matrix(7, 7, rng);
    SvdResult f = svd(a);
    double sum = 0;
    for (double s : f.s) sum += s * s;
    EXPECT_NEAR(std::sqrt(sum), norm_fro(a), 1e-11);
}

TEST(SvdTruncated, BestRankOneOfRankOnePlusNoise) {
    util::Rng rng(6);
    // A = 10 * u v^T + small noise: rank-1 truncation recovers the big part.
    const int n = 20;
    Vector u(n), v(n);
    for (int i = 0; i < n; ++i) {
        u[i] = rng.uniform(-1, 1);
        v[i] = rng.uniform(-1, 1);
    }
    scale(u, 1.0 / norm2(u));
    scale(v, 1.0 / norm2(v));
    Matrix a(n, n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) a(i, j) = 10.0 * u[i] * v[j] + 1e-6 * rng.uniform(-1, 1);
    SvdResult f = svd_truncated(a, 1);
    ASSERT_EQ(f.u.cols(), 1);
    EXPECT_NEAR(f.s[0], 10.0, 1e-4);
    Matrix residual = a - svd_reconstruct(f);
    EXPECT_LE(norm_fro(residual), 1e-4);
}

TEST(SvdTruncated, EckartYoungErrorEqualsNextSingularValue) {
    util::Rng rng(7);
    Matrix a = random_matrix(15, 10, rng);
    SvdResult full = svd(a);
    for (int r = 1; r <= 3; ++r) {
        SvdResult t = svd_truncated(a, r);
        Matrix e = a - svd_reconstruct(t);
        // Spectral norm of the residual = sigma_{r+1}; Frobenius bound checked.
        double tail = 0;
        for (std::size_t i = static_cast<std::size_t>(r); i < full.s.size(); ++i)
            tail += full.s[i] * full.s[i];
        EXPECT_NEAR(norm_fro(e), std::sqrt(tail), 1e-9);
    }
}

TEST(SvdTruncated, RankBeyondMinDimClamps) {
    util::Rng rng(8);
    Matrix a = random_matrix(4, 3, rng);
    SvdResult f = svd_truncated(a, 10);
    EXPECT_EQ(static_cast<int>(f.s.size()), 3);
}

TEST(Svd, ZeroRankRequestThrows) {
    EXPECT_THROW(svd_truncated(Matrix(3, 3), 0), Error);
}

class SvdProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdProperty, ReconstructionAndOrthogonality) {
    auto [m, n] = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(m * 131 + n));
    Matrix a = random_matrix(m, n, rng);
    SvdResult f = svd(a);
    expect_near(svd_reconstruct(f), a, 1e-10);
    EXPECT_LE(orthonormality_error(f.u), 1e-10);
    EXPECT_LE(orthonormality_error(f.v), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdProperty,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 2}, std::pair{5, 3},
                                           std::pair{3, 5}, std::pair{20, 20},
                                           std::pair{33, 17}, std::pair{17, 33},
                                           std::pair{50, 10}));

}  // namespace
}  // namespace varmor::la
