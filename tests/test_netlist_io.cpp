#include <gtest/gtest.h>

#include <sstream>

#include "circuit/generators.h"
#include "circuit/mna.h"
#include "circuit/netlist_io.h"
#include "la/ops.h"
#include "test_helpers.h"

namespace varmor::circuit {
namespace {

Netlist parse_text(const std::string& text) {
    std::istringstream is(text);
    return parse_netlist(is);
}

TEST(NetlistIo, ParsesMinimalNet) {
    Netlist net = parse_text(R"(* tiny
.params 1
R1 in out 50.0 sens=0.004
C1 out 0 1e-15
.port in
.end
)");
    EXPECT_EQ(net.num_nodes(), 2);
    EXPECT_EQ(net.num_params(), 1);
    EXPECT_EQ(net.num_ports(), 1);
    ASSERT_EQ(net.elements().size(), 2u);
    EXPECT_DOUBLE_EQ(net.elements()[0].value, 1.0 / 50.0);
    EXPECT_DOUBLE_EQ(net.elements()[0].dvalue[0], 0.004);
}

TEST(NetlistIo, GndAliasAndCaseInsensitive) {
    Netlist net = parse_text(R"(.PARAMS 0
r1 A GND 10
c1 a 0 1e-15
.PORT a
.END
)");
    EXPECT_EQ(net.num_nodes(), 1);  // 'A' and 'a' are the same node
    EXPECT_EQ(net.elements()[0].node_b, 0);
}

TEST(NetlistIo, CommentsAndBlankLinesIgnored) {
    Netlist net = parse_text(R"(
* a comment

R1 x y 5 ; trailing comment
C1 y 0 1e-15
.port x
.end
)");
    EXPECT_EQ(net.elements().size(), 2u);
}

TEST(NetlistIo, ErrorsCarryLineNumbers) {
    try {
        parse_text("R1 a b 5\nF9 a b 1\n.end\n");
        FAIL() << "expected parse error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    }
}

TEST(NetlistIo, MalformedInputsThrow) {
    EXPECT_THROW(parse_text("R1 a b\n.end\n"), Error);            // missing value
    EXPECT_THROW(parse_text("R1 a b five\n.end\n"), Error);       // bad number
    EXPECT_THROW(parse_text("R1 a b 5 junk\n.end\n"), Error);     // unknown token
    EXPECT_THROW(parse_text("R1 a b 5\n"), Error);                // no .end
    EXPECT_THROW(parse_text(".end\nR1 a b 5\n"), Error);          // content after .end
    EXPECT_THROW(parse_text("R1 a b 5 sens=1\n.end\n"), Error);   // sens without .params
    EXPECT_THROW(parse_text(".params 2\nR1 a b 5 sens=1\n.end\n"), Error);  // count mismatch
    EXPECT_THROW(parse_text("R1 a b -5\n.end\n"), Error);         // negative value
    EXPECT_THROW(parse_text(".port nowhere\nR1 a b 5\n.end\n"), Error);  // unknown port node
}

TEST(NetlistIo, RoundTripPreservesMna) {
    RandomRcOptions opts;
    opts.unknowns = 60;
    Netlist original = random_rc_net(opts);
    std::ostringstream os;
    write_netlist(original, os);
    std::istringstream is(os.str());
    Netlist parsed = parse_netlist(is);

    ParametricSystem a = assemble_mna(original);
    ParametricSystem b = assemble_mna(parsed);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.num_params(), b.num_params());
    EXPECT_LE(la::norm_max(a.g0.to_dense() - b.g0.to_dense()),
              1e-12 * (1 + la::norm_max(a.g0.to_dense())));
    EXPECT_LE(la::norm_max(a.c0.to_dense() - b.c0.to_dense()),
              1e-24);
    for (int i = 0; i < a.num_params(); ++i)
        EXPECT_LE(la::norm_max(a.dg[static_cast<std::size_t>(i)].to_dense() -
                               b.dg[static_cast<std::size_t>(i)].to_dense()),
                  1e-12 * (1 + la::norm_max(a.dg[static_cast<std::size_t>(i)].to_dense())));
    varmor::testing::expect_near(a.b, b.b, 0.0);
}

TEST(NetlistIo, RoundTripRlcBus) {
    RlcBusOptions opts;
    opts.segments_per_line = 6;
    Netlist original = coupled_rlc_bus(opts);
    std::ostringstream os;
    write_netlist(original, os);
    std::istringstream is(os.str());
    Netlist parsed = parse_netlist(is);
    EXPECT_EQ(parsed.num_inductors(), original.num_inductors());
    EXPECT_EQ(parsed.mna_size(), original.mna_size());
    EXPECT_EQ(parsed.num_ports(), original.num_ports());
}

TEST(NetlistIo, FileRoundTrip) {
    RandomRcOptions opts;
    opts.unknowns = 20;
    Netlist original = random_rc_net(opts);
    const std::string path = ::testing::TempDir() + "/varmor_net.sp";
    write_netlist_file(original, path);
    Netlist parsed = parse_netlist_file(path);
    EXPECT_EQ(parsed.mna_size(), original.mna_size());
    EXPECT_THROW(parse_netlist_file("/nonexistent/net.sp"), Error);
}

}  // namespace
}  // namespace varmor::circuit
