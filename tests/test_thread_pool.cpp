#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <numeric>
#include <tuple>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace varmor::util {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(0, 257, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunksPartitionTheRange) {
    // The work-stealing pool oversubscribes: size() * kChunksPerWorker chunks
    // (capped by the range length), contiguous and deterministic. rank -> [b, e)
    // must be a pure function of the range, never of which worker ran it.
    ThreadPool pool(3);
    const int expected = 3 * ThreadPool::kChunksPerWorker;
    std::mutex m;
    std::vector<std::tuple<int, int, int>> chunks;
    pool.parallel_chunks(5, 47, [&](int rank, int b, int e) {
        EXPECT_GE(rank, 0);
        EXPECT_LT(rank, expected);
        std::lock_guard<std::mutex> lock(m);
        chunks.emplace_back(rank, b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    ASSERT_EQ(chunks.size(), static_cast<std::size_t>(expected));
    EXPECT_EQ(std::get<1>(chunks.front()), 5);
    EXPECT_EQ(std::get<2>(chunks.back()), 47);
    for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
        // Ranks are dense and chunks tile the range in rank order.
        EXPECT_EQ(std::get<0>(chunks[i]) + 1, std::get<0>(chunks[i + 1]));
        EXPECT_EQ(std::get<2>(chunks[i]), std::get<1>(chunks[i + 1]));
    }
}

TEST(ThreadPool, ShortRangeGetsOneChunkPerElement) {
    ThreadPool pool(4);
    std::mutex m;
    std::vector<std::pair<int, int>> chunks;
    pool.parallel_chunks(0, 3, [&](int, int b, int e) {
        std::lock_guard<std::mutex> lock(m);
        chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    ASSERT_EQ(chunks.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(chunks[static_cast<std::size_t>(i)].first, i);
        EXPECT_EQ(chunks[static_cast<std::size_t>(i)].second, i + 1);
    }
}

TEST(ThreadPool, SchedulingStatsCountChunksAndSections) {
    ThreadPool pool(3);
    pool.reset_scheduling_stats();
    pool.parallel_for(0, 100, [](int) {});
    const auto stats = pool.scheduling_stats();
    ASSERT_EQ(stats.chunks_per_worker.size(), 3u);
    long long total = 0;
    for (long long c : stats.chunks_per_worker) total += c;
    EXPECT_EQ(total, 3LL * ThreadPool::kChunksPerWorker);
    EXPECT_EQ(stats.sections, 1);
    // Every queue was dealt kChunksPerWorker chunks.
    EXPECT_EQ(stats.queue_high_water, ThreadPool::kChunksPerWorker);
    EXPECT_GE(stats.steals, 0);
}

TEST(ThreadPool, StealingRebalancesASkewedSection) {
    // One pathological chunk (rank 0) holds its worker for the whole section;
    // the other workers must steal rank 0's dealt-but-unstarted chunks, so
    // the section finishes and at least one steal is recorded. Every rank
    // still runs exactly once — stealing moves workers, not work.
    ThreadPool pool(2);
    pool.reset_scheduling_stats();
    std::atomic<int> others_done{0};
    const int chunks = 2 * ThreadPool::kChunksPerWorker;
    std::vector<std::atomic<int>> ran(static_cast<std::size_t>(chunks));
    for (auto& r : ran) r.store(0);
    pool.parallel_chunks(0, chunks, [&](int rank, int, int) {
        ran[static_cast<std::size_t>(rank)].fetch_add(1);
        if (rank == 0) {
            // Busy-wait until every other chunk completed somewhere.
            while (others_done.load() < chunks - 1) std::this_thread::yield();
        } else {
            others_done.fetch_add(1);
        }
    });
    for (const auto& r : ran) EXPECT_EQ(r.load(), 1);
    const auto stats = pool.scheduling_stats();
    EXPECT_GE(stats.steals, 1);
}

TEST(ThreadPool, ParallelTasksRunEveryTaskOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(37);
    for (auto& h : hits) h.store(0);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < hits.size(); ++i)
        tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
    pool.parallel_tasks(tasks);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelTasksPropagateExceptions) {
    ThreadPool pool(4);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i)
        tasks.push_back([i] {
            if (i == 11) throw Error("task boom");
        });
    EXPECT_THROW(pool.parallel_tasks(tasks), Error);
    // Pool must still be usable afterwards.
    std::atomic<int> count{0};
    pool.parallel_for(0, 8, [&](int) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, RunTasksSerialPolicyRunsInlineInOrder) {
    std::vector<int> order;
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 5; ++i) tasks.push_back([&order, i] { order.push_back(i); });
    ThreadPool::run_tasks(1, tasks);
    ASSERT_EQ(order.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, SerialPoolRunsInline) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    const auto caller = std::this_thread::get_id();
    int calls = 0;
    pool.parallel_for(0, 10, [&](int) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++calls;  // safe: inline execution
    });
    EXPECT_EQ(calls, 10);
}

TEST(ThreadPool, EmptyAndSingleElementRanges) {
    ThreadPool pool(4);
    int calls = 0;
    pool.parallel_for(3, 3, [&](int) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::atomic<int> acalls{0};
    pool.parallel_for(7, 8, [&](int i) {
        EXPECT_EQ(i, 7);
        acalls.fetch_add(1);
    });
    EXPECT_EQ(acalls.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallel_for(0, 100, [](int i) {
            if (i == 63) throw Error("boom");
        }),
        Error);
    // Pool must still be usable afterwards.
    std::atomic<int> count{0};
    pool.parallel_for(0, 8, [&](int) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, NestedParallelSectionsRunInlineWithoutDeadlock) {
    ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.parallel_for(0, 4, [&](int) {
        pool.parallel_for(0, 4, [&](int) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
    ThreadPool& pool = ThreadPool::global();
    EXPECT_GE(pool.size(), 1);
    std::atomic<long> sum{0};
    pool.parallel_for(1, 101, [&](int i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 5050);
}

}  // namespace
}  // namespace varmor::util
