#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace varmor::util {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(0, 257, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunksPartitionTheRange) {
    ThreadPool pool(3);
    std::mutex m;
    std::vector<std::pair<int, int>> chunks;
    pool.parallel_chunks(5, 47, [&](int rank, int b, int e) {
        EXPECT_GE(rank, 0);
        EXPECT_LT(rank, 3);
        std::lock_guard<std::mutex> lock(m);
        chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    ASSERT_EQ(chunks.size(), 3u);
    EXPECT_EQ(chunks.front().first, 5);
    EXPECT_EQ(chunks.back().second, 47);
    for (std::size_t i = 0; i + 1 < chunks.size(); ++i)
        EXPECT_EQ(chunks[i].second, chunks[i + 1].first);
}

TEST(ThreadPool, SerialPoolRunsInline) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    const auto caller = std::this_thread::get_id();
    int calls = 0;
    pool.parallel_for(0, 10, [&](int) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++calls;  // safe: inline execution
    });
    EXPECT_EQ(calls, 10);
}

TEST(ThreadPool, EmptyAndSingleElementRanges) {
    ThreadPool pool(4);
    int calls = 0;
    pool.parallel_for(3, 3, [&](int) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::atomic<int> acalls{0};
    pool.parallel_for(7, 8, [&](int i) {
        EXPECT_EQ(i, 7);
        acalls.fetch_add(1);
    });
    EXPECT_EQ(acalls.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallel_for(0, 100, [](int i) {
            if (i == 63) throw Error("boom");
        }),
        Error);
    // Pool must still be usable afterwards.
    std::atomic<int> count{0};
    pool.parallel_for(0, 8, [&](int) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, NestedParallelSectionsRunInlineWithoutDeadlock) {
    ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.parallel_for(0, 4, [&](int) {
        pool.parallel_for(0, 4, [&](int) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
    ThreadPool& pool = ThreadPool::global();
    EXPECT_GE(pool.size(), 1);
    std::atomic<long> sum{0};
    pool.parallel_for(1, 101, [&](int i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 5050);
}

}  // namespace
}  // namespace varmor::util
