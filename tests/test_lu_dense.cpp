#include <gtest/gtest.h>

#include "la/lu_dense.h"
#include "test_helpers.h"

namespace varmor::la {
namespace {

using testing::expect_near;
using testing::random_dd_matrix;
using testing::random_matrix;
using testing::random_zmatrix;

TEST(DenseLu, SolvesHandComputedSystem) {
    Matrix a{{2.0, 1.0}, {1.0, 3.0}};
    Vector b{3.0, 4.0};  // solution x = (1, 1)
    Vector x = solve_dense(a, b);
    EXPECT_NEAR(x[0], 1.0, 1e-14);
    EXPECT_NEAR(x[1], 1.0, 1e-14);
}

TEST(DenseLu, PivotingHandlesZeroDiagonal) {
    Matrix a{{0.0, 1.0}, {1.0, 0.0}};
    Vector b{2.0, 3.0};
    Vector x = solve_dense(a, b);
    EXPECT_NEAR(x[0], 3.0, 1e-14);
    EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(DenseLu, SingularThrows) {
    Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    EXPECT_THROW(DenseLu<double>{a}, Error);
}

TEST(DenseLu, NonSquareThrows) {
    EXPECT_THROW(DenseLu<double>{Matrix(2, 3)}, Error);
}

TEST(DenseLu, Determinant2x2) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_NEAR(DenseLu<double>(a).determinant(), -2.0, 1e-14);
}

TEST(DenseLu, DeterminantOfIdentityPermutation) {
    // Permutation matrix: det = sign of the permutation.
    Matrix p{{0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, {1.0, 0.0, 0.0}};  // cyclic, even
    EXPECT_NEAR(DenseLu<double>(p).determinant(), 1.0, 1e-14);
}

TEST(DenseLu, InverseTimesMatrixIsIdentity) {
    util::Rng rng(21);
    Matrix a = random_dd_matrix(8, rng);
    expect_near(matmul(inverse(a), a), Matrix::identity(8), 1e-10);
}

TEST(DenseLu, ComplexSolve) {
    ZMatrix a{{cplx(1, 1), cplx(0, 0)}, {cplx(0, 0), cplx(0, 2)}};
    ZVector b{cplx(2, 0), cplx(2, 0)};
    ZVector x = solve_dense(a, b);
    EXPECT_NEAR(std::abs(x[0] - cplx(1, -1)), 0.0, 1e-14);
    EXPECT_NEAR(std::abs(x[1] - cplx(0, -1)), 0.0, 1e-14);
}

class LuResidualProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuResidualProperty, RealResidualSmall) {
    const int n = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(n) + 100);
    Matrix a = random_dd_matrix(n, rng);
    Vector b = Vector(n);
    for (int i = 0; i < n; ++i) b[i] = rng.uniform(-1, 1);
    Vector x = solve_dense(a, b);
    Vector r = matvec(a, x) - b;
    EXPECT_LE(norm2(r), 1e-10 * (1.0 + norm2(b)));
}

TEST_P(LuResidualProperty, ComplexResidualSmall) {
    const int n = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(n) + 200);
    ZMatrix a = random_zmatrix(n, n, rng);
    for (int i = 0; i < n; ++i) a(i, i) += cplx(n, n);  // diagonally dominant
    ZVector b(n);
    for (int i = 0; i < n; ++i) b[i] = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    ZVector x = solve_dense(a, b);
    ZVector r = matvec(a, x) - b;
    EXPECT_LE(norm2(r), 1e-10 * (1.0 + norm2(b)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuResidualProperty, ::testing::Values(1, 2, 3, 5, 10, 20, 50));

TEST(DenseLu, MultipleRhs) {
    util::Rng rng(33);
    Matrix a = random_dd_matrix(6, rng);
    Matrix b = random_matrix(6, 4, rng);
    Matrix x = solve_dense(a, b);
    expect_near(matmul(a, x), b, 1e-10);
}

TEST(DenseLu, MatrixSolveBitIdenticalToColumnwiseVectorSolves) {
    util::Rng rng(34);
    Matrix a = random_dd_matrix(9, rng);
    Matrix b = random_matrix(9, 7, rng);  // odd count exercises the rhs-block tail
    DenseLu<double> lu(a);
    const Matrix x = lu.solve(b);
    for (int j = 0; j < b.cols(); ++j) {
        const Vector xj = lu.solve(b.col(j));
        for (int i = 0; i < 9; ++i) EXPECT_EQ(x(i, j), xj[i]) << i << "," << j;
    }
}

TEST(DenseLuWorkspace, RealPencilBitIdenticalToDenseLu) {
    util::Rng rng(51);
    DenseLuWorkspace<double> ws;
    for (int n : {1, 3, 8, 20}) {
        Matrix a = random_dd_matrix(n, rng);
        Matrix b = random_matrix(n, 3, rng);
        ws.factor(a);  // one workspace reused across sizes
        Matrix x = b;
        ws.solve_inplace(x);
        const Matrix x_ref = DenseLu<double>(a).solve(b);
        EXPECT_EQ(norm_max(x - x_ref), 0.0) << "n=" << n;
    }
}

TEST(DenseLuWorkspace, ComplexPencilBitIdenticalToDenseLu) {
    util::Rng rng(52);
    DenseLuWorkspace<cplx> ws;
    for (int n : {2, 5, 13}) {
        ZMatrix a = random_zmatrix(n, n, rng);
        for (int i = 0; i < n; ++i) a(i, i) += cplx(n, n);
        ZMatrix b = random_zmatrix(n, 2, rng);
        ws.factor(a);
        ZMatrix x = b;
        ws.solve_inplace(x);
        const ZMatrix x_ref = DenseLu<cplx>(a).solve(b);
        EXPECT_EQ(norm_max(x - x_ref), 0.0) << "n=" << n;
        // Vector path shares the kernels too.
        ZVector v = b.col(0);
        ws.solve_inplace(v);
        for (int i = 0; i < n; ++i) EXPECT_EQ(v[i], x_ref(i, 0));
    }
}

TEST(DenseLuWorkspace, StampThenFactorMatchesFactorCopy) {
    util::Rng rng(53);
    const Matrix a = random_dd_matrix(7, rng);
    const Matrix b = random_matrix(7, 2, rng);

    DenseLuWorkspace<double> by_copy;
    by_copy.factor(a);
    Matrix x1 = b;
    by_copy.solve_inplace(x1);

    DenseLuWorkspace<double> by_stamp;
    by_stamp.stamp(7).raw() = a.raw();
    by_stamp.factor_stamped();
    Matrix x2 = b;
    by_stamp.solve_inplace(x2);

    EXPECT_EQ(norm_max(x1 - x2), 0.0);
}

TEST(DenseLuWorkspace, SingularThrowsAndGuardsSolve) {
    DenseLuWorkspace<double> ws;
    Matrix singular{{1.0, 2.0}, {2.0, 4.0}};
    EXPECT_THROW(ws.factor(singular), Error);
    Vector b{1.0, 1.0};
    EXPECT_THROW(ws.solve_inplace(b), Error);  // no valid factorization held
}

}  // namespace
}  // namespace varmor::la
