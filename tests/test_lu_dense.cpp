#include <gtest/gtest.h>

#include "la/lu_dense.h"
#include "test_helpers.h"

namespace varmor::la {
namespace {

using testing::expect_near;
using testing::random_dd_matrix;
using testing::random_matrix;
using testing::random_zmatrix;

TEST(DenseLu, SolvesHandComputedSystem) {
    Matrix a{{2.0, 1.0}, {1.0, 3.0}};
    Vector b{3.0, 4.0};  // solution x = (1, 1)
    Vector x = solve_dense(a, b);
    EXPECT_NEAR(x[0], 1.0, 1e-14);
    EXPECT_NEAR(x[1], 1.0, 1e-14);
}

TEST(DenseLu, PivotingHandlesZeroDiagonal) {
    Matrix a{{0.0, 1.0}, {1.0, 0.0}};
    Vector b{2.0, 3.0};
    Vector x = solve_dense(a, b);
    EXPECT_NEAR(x[0], 3.0, 1e-14);
    EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(DenseLu, SingularThrows) {
    Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    EXPECT_THROW(DenseLu<double>{a}, Error);
}

TEST(DenseLu, NonSquareThrows) {
    EXPECT_THROW(DenseLu<double>{Matrix(2, 3)}, Error);
}

TEST(DenseLu, Determinant2x2) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_NEAR(DenseLu<double>(a).determinant(), -2.0, 1e-14);
}

TEST(DenseLu, DeterminantOfIdentityPermutation) {
    // Permutation matrix: det = sign of the permutation.
    Matrix p{{0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, {1.0, 0.0, 0.0}};  // cyclic, even
    EXPECT_NEAR(DenseLu<double>(p).determinant(), 1.0, 1e-14);
}

TEST(DenseLu, InverseTimesMatrixIsIdentity) {
    util::Rng rng(21);
    Matrix a = random_dd_matrix(8, rng);
    expect_near(matmul(inverse(a), a), Matrix::identity(8), 1e-10);
}

TEST(DenseLu, ComplexSolve) {
    ZMatrix a{{cplx(1, 1), cplx(0, 0)}, {cplx(0, 0), cplx(0, 2)}};
    ZVector b{cplx(2, 0), cplx(2, 0)};
    ZVector x = solve_dense(a, b);
    EXPECT_NEAR(std::abs(x[0] - cplx(1, -1)), 0.0, 1e-14);
    EXPECT_NEAR(std::abs(x[1] - cplx(0, -1)), 0.0, 1e-14);
}

class LuResidualProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuResidualProperty, RealResidualSmall) {
    const int n = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(n) + 100);
    Matrix a = random_dd_matrix(n, rng);
    Vector b = Vector(n);
    for (int i = 0; i < n; ++i) b[i] = rng.uniform(-1, 1);
    Vector x = solve_dense(a, b);
    Vector r = matvec(a, x) - b;
    EXPECT_LE(norm2(r), 1e-10 * (1.0 + norm2(b)));
}

TEST_P(LuResidualProperty, ComplexResidualSmall) {
    const int n = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(n) + 200);
    ZMatrix a = random_zmatrix(n, n, rng);
    for (int i = 0; i < n; ++i) a(i, i) += cplx(n, n);  // diagonally dominant
    ZVector b(n);
    for (int i = 0; i < n; ++i) b[i] = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    ZVector x = solve_dense(a, b);
    ZVector r = matvec(a, x) - b;
    EXPECT_LE(norm2(r), 1e-10 * (1.0 + norm2(b)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuResidualProperty, ::testing::Values(1, 2, 3, 5, 10, 20, 50));

TEST(DenseLu, MultipleRhs) {
    util::Rng rng(33);
    Matrix a = random_dd_matrix(6, rng);
    Matrix b = random_matrix(6, 4, rng);
    Matrix x = solve_dense(a, b);
    expect_near(matmul(a, x), b, 1e-10);
}

}  // namespace
}  // namespace varmor::la
