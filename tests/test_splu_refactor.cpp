// The batched solve engine's core contract: a numeric-only refactorization
// over cached symbolic data must reproduce a from-scratch factorization to
// machine precision, on both real matrices and complex pencils, and the
// union-pattern assemblers must reproduce the generic sparse adds.

#include <gtest/gtest.h>

#include "circuit/mna.h"
#include "circuit/netlist.h"
#include "la/lu_dense.h"
#include "sparse/assemble.h"
#include "sparse/splu.h"
#include "test_helpers.h"
#include "mor_test_utils.h"

namespace varmor::sparse {
namespace {

using la::Matrix;
using la::Vector;
using la::ZVector;

Csc random_sparse(int n, double density, util::Rng& rng, double diag_boost = 0.0) {
    Triplets t(n, n);
    for (int j = 0; j < n; ++j) {
        t.add(j, j, rng.uniform(1.0, 2.0) + diag_boost);
        for (int i = 0; i < n; ++i)
            if (i != j && rng.chance(density)) t.add(i, j, rng.uniform(-1.0, 1.0));
    }
    return Csc(t);
}

/// Same pattern as `a`, new random values (diagonal kept dominant so the
/// frozen pivot sequence stays healthy).
Csc reroll_values(const Csc& a, util::Rng& rng, double diag_boost) {
    std::vector<double> vals(a.values().size());
    Csc out(a.rows(), a.cols(), a.col_ptr(), a.row_idx(), std::move(vals));
    for (int j = 0; j < a.cols(); ++j)
        for (int p = a.col_ptr()[static_cast<std::size_t>(j)];
             p < a.col_ptr()[static_cast<std::size_t>(j) + 1]; ++p)
            out.values()[static_cast<std::size_t>(p)] =
                a.row_idx()[static_cast<std::size_t>(p)] == j
                    ? rng.uniform(1.0, 2.0) + diag_boost
                    : rng.uniform(-1.0, 1.0);
    return out;
}

TEST(SpluRefactor, MatchesFreshFactorizationToMachinePrecision) {
    util::Rng rng(11);
    for (int trial = 0; trial < 5; ++trial) {
        const Csc a1 = random_sparse(60, 0.08, rng, 6.0);
        SparseLu lu(a1);
        const Csc a2 = reroll_values(a1, rng, 6.0);
        lu.refactorize(a2);

        const SparseLu fresh(a2);
        Vector b(60);
        for (int i = 0; i < 60; ++i) b[i] = rng.uniform(-1, 1);
        const Vector xr = lu.solve(b);
        const Vector xf = fresh.solve(b);
        EXPECT_LE(la::norm2(xr - xf), 1e-12 * (1 + la::norm2(xf)));
        // And both solve the actual system.
        EXPECT_LE(la::norm2(a2.apply(xr) - b), 1e-9 * (1 + la::norm2(b)));
        // Transpose path sees the refactorized values too.
        const Vector xt = lu.solve_transpose(b);
        EXPECT_LE(la::norm2(a2.apply_transpose(xt) - b), 1e-9 * (1 + la::norm2(b)));
    }
}

TEST(SpluRefactor, SameValuesReproduceBitIdenticalSolves) {
    util::Rng rng(12);
    const Csc a = random_sparse(40, 0.1, rng, 5.0);
    Vector b(40);
    for (int i = 0; i < 40; ++i) b[i] = rng.uniform(-1, 1);

    SparseLu lu(a);
    const Vector x_before = lu.solve(b);
    lu.refactorize(a);  // identical values: the replay must be exact
    const Vector x_after = lu.solve(b);
    for (int i = 0; i < 40; ++i) EXPECT_EQ(x_before[i], x_after[i]);
}

TEST(SpluRefactor, WorkspaceReuseAcrossManyRefactorizations) {
    util::Rng rng(13);
    const Csc a = random_sparse(50, 0.08, rng, 5.0);
    SparseLu lu(a);
    SpluWorkspace ws;
    Vector b(50);
    for (int i = 0; i < 50; ++i) b[i] = rng.uniform(-1, 1);
    for (int rep = 0; rep < 10; ++rep) {
        const Csc ak = reroll_values(a, rng, 5.0);
        lu.refactorize(ak, ws);
        const Vector x = lu.solve(b);
        EXPECT_LE(la::norm2(ak.apply(x) - b), 1e-9 * (1 + la::norm2(b)));
    }
}

TEST(SpluRefactor, PatternMismatchThrows) {
    util::Rng rng(14);
    const Csc a = random_sparse(20, 0.15, rng, 4.0);
    Csc other = random_sparse(20, 0.3, rng, 4.0);
    SparseLu lu(a);
    EXPECT_THROW(lu.refactorize(other), Error);
}

TEST(SpluRefactor, PivotGrowthTriggersRefactorError) {
    // Ill-conditioned refactorization values: the frozen (1,1) pivot stays
    // far above the absolute singularity tolerance (1e-9 vs 1e-13 * max|A|),
    // but replaying it amplifies the (2,2) entry to ~1e9 — past the growth
    // limit — so accuracy would silently degrade. The monitor must trigger
    // the RefactorError fallback instead of returning unstable factors.
    Triplets t(2, 2);
    t.add(0, 0, 4.0);
    t.add(0, 1, 1.0);
    t.add(1, 0, 1.0);
    t.add(1, 1, 3.0);
    const Csc a(t);
    // Natural ordering pins the elimination order (and hence the frozen
    // pivot sequence) so the growth scenario below is deterministic.
    SparseLu::Options opts;
    opts.ordering = SpluSymbolic::Ordering::natural;
    SparseLu lu(a, opts);

    Csc hard = a;
    hard.values() = {1e-9, 1.0, 1.0, 1.0};  // column-major: a11, a21, a12, a22
    EXPECT_THROW(lu.refactorize(hard), RefactorError);

    // A fresh factorization (what the fallback runs) handles the same values
    // fine: partial pivoting swaps rows and solves accurately.
    const SparseLu fresh(hard);
    const Vector x = fresh.solve(Vector{1.0, 0.0});
    EXPECT_LE(la::norm2(hard.apply(x) - Vector{1.0, 0.0}), 1e-12);

    // Moderate growth (well below the limit) must NOT trigger: the replay
    // path stays the hot path for benign value changes.
    Csc mild = a;
    mild.values() = {0.05, 1.0, 1.0, 1.0};  // growth ~ 20
    EXPECT_NO_THROW(lu.refactorize(mild));
    const Vector y = lu.solve(Vector{1.0, 0.0});
    EXPECT_LE(la::norm2(mild.apply(y) - Vector{1.0, 0.0}), 1e-9);
}

TEST(SpluRefactor, GrowthLimitIsTunableViaOptions) {
    // Same ill-conditioned replay as PivotGrowthTriggersRefactorError, but
    // with the ceiling plumbed through Options instead of the compile-time
    // default.
    Triplets t(2, 2);
    t.add(0, 0, 4.0);
    t.add(0, 1, 1.0);
    t.add(1, 0, 1.0);
    t.add(1, 1, 3.0);
    const Csc a(t);

    Csc hard = a;
    hard.values() = {1e-9, 1.0, 1.0, 1.0};  // replay growth ~1e9
    Csc mild = a;
    mild.values() = {0.05, 1.0, 1.0, 1.0};  // replay growth ~20

    // A permissive limit accepts the ~1e9 growth the default rejects.
    SparseLu::Options loose;
    loose.ordering = SpluSymbolic::Ordering::natural;
    loose.growth_limit = 1e12;
    SparseLu lu_loose(a, loose);
    EXPECT_NO_THROW(lu_loose.refactorize(hard));

    // A strict limit rejects the ~20x growth the default accepts.
    SparseLu::Options strict;
    strict.ordering = SpluSymbolic::Ordering::natural;
    strict.growth_limit = 10.0;
    SparseLu lu_strict(a, strict);
    EXPECT_THROW(lu_strict.refactorize(mild), RefactorError);

    // The limit survives copying (per-thread reference copies in the batch
    // drivers must inherit the reference's policy).
    SparseLu copy = lu_strict;
    EXPECT_THROW(copy.refactorize(mild), RefactorError);

    // Invalid limits are rejected up front.
    SparseLu::Options bad;
    bad.growth_limit = 0.0;
    EXPECT_THROW(SparseLu(a, bad), Error);
}

TEST(SpluRefactor, CollapsedPivotThrowsRefactorError) {
    Triplets t(2, 2);
    t.add(0, 0, 2.0);
    t.add(0, 1, 1.0);
    t.add(1, 0, 1.0);
    t.add(1, 1, 3.0);
    const Csc a(t);
    SparseLu lu(a);

    // Same pattern, rank-one values: the frozen pivots must report collapse.
    Triplets t2(2, 2);
    t2.add(0, 0, 1.0);
    t2.add(0, 1, 2.0);
    t2.add(1, 0, 1.0);
    t2.add(1, 1, 2.0);
    EXPECT_THROW(lu.refactorize(Csc(t2)), RefactorError);
}

TEST(SpluRefactor, WorkspaceStaysCleanAfterCollapsedPivotThrow) {
    // A RefactorError must leave the workspace's all-zero invariant intact:
    // reusing the same workspace afterwards has to produce correct factors.
    util::Rng rng(21);
    const Csc a = random_sparse(30, 0.1, rng, 5.0);
    SparseLu lu(a);
    SpluWorkspace ws;

    // Same pattern, values driven singular: every entry of one column zeroed
    // is a pattern change, so instead scale a column to roundoff.
    Csc bad = a;
    for (int p = bad.col_ptr()[3]; p < bad.col_ptr()[4]; ++p)
        bad.values()[static_cast<std::size_t>(p)] *= 1e-300;
    EXPECT_THROW(lu.refactorize(bad, ws), RefactorError);

    const Csc good = reroll_values(a, rng, 5.0);
    lu.refactorize(good, ws);  // same workspace, post-throw
    Vector b(30);
    for (int i = 0; i < 30; ++i) b[i] = rng.uniform(-1, 1);
    const Vector x = lu.solve(b);
    EXPECT_LE(la::norm2(good.apply(x) - b), 1e-9 * (1 + la::norm2(b)));

    const SparseLu fresh(good);
    const Vector xf = fresh.solve(b);
    EXPECT_LE(la::norm2(x - xf), 1e-12 * (1 + la::norm2(xf)));
}

TEST(SpluRefactor, SymbolicReuseGivesSameSolutions) {
    util::Rng rng(15);
    const Csc a = random_sparse(45, 0.1, rng, 5.0);
    const SpluSymbolic symbolic = SpluSymbolic::analyze(a);
    EXPECT_EQ(symbolic.size(), 45);

    SparseLu plain(a);
    SparseLu reused(a, symbolic);
    Vector b(45);
    for (int i = 0; i < 45; ++i) b[i] = rng.uniform(-1, 1);
    const Vector xp = plain.solve(b);
    const Vector xr = reused.solve(b);
    for (int i = 0; i < 45; ++i) EXPECT_EQ(xp[i], xr[i]);  // same ordering, same arithmetic
}

TEST(SpluRefactor, ComplexPencilRefactorizeAcrossFrequencies) {
    util::Rng rng(16);
    const Csc g = random_sparse(30, 0.1, rng, 4.0);
    const Csc c = random_sparse(30, 0.1, rng, 1.0);
    const PencilAssembler assembler(g, c);

    ZCsc a = assembler.assemble(la::cplx(0.0, 1.0));
    ZSparseLu lu(a);
    ZSpluWorkspace ws;
    ZVector b(30);
    for (int i = 0; i < 30; ++i) b[i] = la::cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));

    for (double w : {1e-2, 1.0, 1e2, 1e4}) {
        const la::cplx s(0.0, w);
        assembler.assemble(s, a);
        lu.refactorize(a, ws);
        const ZVector x = lu.solve(b);
        const ZVector r = pencil(g, c, s).apply(x) - b;
        EXPECT_LE(la::norm2(r), 1e-9 * (1 + la::norm2(b))) << "w = " << w;

        const ZSparseLu fresh(a);
        const ZVector xf = fresh.solve(b);
        EXPECT_LE(la::norm2(x - xf), 1e-12 * (1 + la::norm2(xf))) << "w = " << w;
    }
}

TEST(PencilAssembler, MatchesGenericPencil) {
    util::Rng rng(17);
    const Csc g = random_sparse(25, 0.12, rng, 3.0);
    const Csc c = random_sparse(25, 0.12, rng, 1.0);
    const PencilAssembler assembler(g, c);
    const la::cplx s(0.4, 7.5);
    const ZCsc fast = assembler.assemble(s);
    const ZCsc slow = pencil(g, c, s);

    ZVector x(25);
    for (int i = 0; i < 25; ++i) x[i] = la::cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    EXPECT_LE(la::norm2(fast.apply(x) - slow.apply(x)), 1e-13 * (1 + la::norm2(x)));
}

TEST(AffineAssembler, MatchesChainedSparseAdds) {
    util::Rng rng(18);
    const Csc base = random_sparse(20, 0.1, rng, 2.0);
    std::vector<Csc> terms;
    for (int t = 0; t < 3; ++t) terms.push_back(random_sparse(20, 0.08, rng));
    const AffineAssembler assembler(base, terms);
    EXPECT_EQ(assembler.num_terms(), 3);

    const std::vector<double> coeffs{0.3, -1.2, 0.0};
    Csc out = assembler.skeleton();
    assembler.combine(coeffs, out);

    Csc ref = base;
    for (std::size_t t = 0; t < terms.size(); ++t)
        if (coeffs[t] != 0.0) ref = add(1.0, ref, coeffs[t], terms[t]);

    Vector x(20);
    for (int i = 0; i < 20; ++i) x[i] = rng.uniform(-1, 1);
    EXPECT_LE(la::norm2(out.apply(x) - ref.apply(x)), 1e-13 * (1 + la::norm2(x)));
}

TEST(ParametricStamper, MatchesParametricSystemEvaluation) {
    const circuit::ParametricSystem sys = varmor::testing::small_parametric_rc(12, 3, 99);
    const circuit::ParametricStamper stamper(sys);
    util::Rng rng(19);
    Vector x(sys.size());
    for (int i = 0; i < sys.size(); ++i) x[i] = rng.uniform(-1, 1);

    for (const std::vector<double>& p :
         {std::vector<double>{0.0, 0.0, 0.0}, std::vector<double>{0.2, -0.1, 0.05}}) {
        const Csc g_fast = stamper.g_at(p);
        const Csc c_fast = stamper.c_at(p);
        const Csc g_ref = sys.g_at(p);
        const Csc c_ref = sys.c_at(p);
        EXPECT_LE(la::norm2(g_fast.apply(x) - g_ref.apply(x)), 1e-13 * (1 + la::norm2(x)));
        EXPECT_LE(la::norm2(c_fast.apply(x) - c_ref.apply(x)), 1e-13 * (1 + la::norm2(x)));
    }
    // The point of the stamper: the pattern does not move with p.
    const Csc ga = stamper.g_at({0.1, 0.1, 0.1});
    const Csc gb = stamper.g_at({-0.2, 0.0, 0.3});
    EXPECT_EQ(ga.col_ptr(), gb.col_ptr());
    EXPECT_EQ(ga.row_idx(), gb.row_idx());
}

}  // namespace
}  // namespace varmor::sparse
