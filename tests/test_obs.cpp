// src/obs — the telemetry layer. Pinned here: counters/gauges/histograms
// survive concurrent storms without losing increments; histogram snapshots
// merge exactly and their quantiles respect the log2 bucket bounds; traces
// collect spans in stage order and the ring-buffer store evicts oldest-
// first under bounded memory; and the OBSERVER EFFECT is zero — a mixed
// 8-client serving workload is bitwise identical to serve-alone with
// telemetry on AND with telemetry off, while StudyService::telemetry()
// returns one snapshot covering cache, disk store, pool, slab, fault and
// latency instruments.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "mor_test_utils.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/study_service.h"
#include "service/telemetry.h"
#include "util/constants.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace varmor::obs {
namespace {

using la::cplx;
using la::ZMatrix;
using varmor::testing::small_parametric_rc;

/// Restores the runtime telemetry switch on scope exit (the registry and
/// trace store are process-global; tests must not leak a flipped switch
/// into other suites of this binary).
class EnabledGuard {
public:
    explicit EnabledGuard(bool on) : prev_(enabled()) { set_enabled(on); }
    ~EnabledGuard() { set_enabled(prev_); }

private:
    bool prev_;
};

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

TEST(ObsCounter, CountsAndResets) {
    Counter c;
    EXPECT_EQ(c.value(), 0);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    c.reset();
    EXPECT_EQ(c.value(), 0);
}

TEST(ObsCounter, ShardedCounterStormLosesNothing) {
    Counter c(16);
    const int kThreads = 8;
    const int kAdds = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < kAdds; ++i) c.add();
        });
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(c.value(), static_cast<long long>(kThreads) * kAdds);
}

TEST(ObsGauge, SetAddValue) {
    Gauge g;
    g.set(7);
    g.add(-3);
    EXPECT_EQ(g.value(), 4);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogram, BucketIndexIsLog2) {
    EXPECT_EQ(Histogram::bucket_index(0), 0);
    EXPECT_EQ(Histogram::bucket_index(-5), 0);
    EXPECT_EQ(Histogram::bucket_index(1), 1);
    EXPECT_EQ(Histogram::bucket_index(2), 2);
    EXPECT_EQ(Histogram::bucket_index(3), 2);
    EXPECT_EQ(Histogram::bucket_index(4), 3);
    EXPECT_EQ(Histogram::bucket_index(1023), 10);
    EXPECT_EQ(Histogram::bucket_index(1024), 11);
    // Every value lands inside its bucket's [lo, hi] range.
    for (long long v : {1LL, 7LL, 64LL, 999LL, 1LL << 40}) {
        const int i = Histogram::bucket_index(v);
        EXPECT_GE(v, HistogramSnapshot::bucket_lo(i));
        EXPECT_LE(v, HistogramSnapshot::bucket_hi(i));
    }
}

TEST(ObsHistogram, ConcurrentRecordStormKeepsEverySample) {
    Histogram h;
    const int kThreads = 8;
    const int kRecords = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kRecords; ++i) h.record(1LL << (t % 12));
        });
    for (std::thread& t : threads) t.join();
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count(), static_cast<long long>(kThreads) * kRecords);
    long long expect_sum = 0;
    for (int t = 0; t < kThreads; ++t) expect_sum += kRecords * (1LL << (t % 12));
    EXPECT_EQ(s.sum, expect_sum);
}

TEST(ObsHistogram, QuantilesRespectBucketBounds) {
    Histogram h;
    for (long long v = 1; v <= 100; ++v) h.record(v);
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count(), 100);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
    // Log2 buckets guarantee <= 2x relative error: the true p50 is 50.5
    // (bucket [32, 63]), the true p99 is 100 (bucket [64, 127]).
    EXPECT_GE(s.p50(), 32.0);
    EXPECT_LE(s.p50(), 63.0);
    EXPECT_GE(s.p99(), 64.0);
    EXPECT_LE(s.p99(), 127.0);
    EXPECT_LE(s.p50(), s.p95());
    EXPECT_LE(s.p95(), s.p99());
    // Empty histogram: quantiles are 0, not UB.
    EXPECT_EQ(HistogramSnapshot{}.p50(), 0.0);
}

TEST(ObsHistogram, SnapshotMergeIsExact) {
    Histogram a;
    Histogram b;
    for (int i = 0; i < 100; ++i) a.record(10);
    for (int i = 0; i < 50; ++i) b.record(1000);
    HistogramSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.count(), 150);
    EXPECT_EQ(merged.sum, 100 * 10 + 50 * 1000);
    EXPECT_EQ(merged.buckets[Histogram::bucket_index(10)], 100);
    EXPECT_EQ(merged.buckets[Histogram::bucket_index(1000)], 50);
}

TEST(ObsSnapshot, MergeAndAccessors) {
    Snapshot a;
    a.add_counter("x.hits", 3);
    a.add_gauge("x.depth", 5);
    Snapshot b;
    b.add_counter("x.hits", 4);
    b.add_counter("y.misses", 1);
    b.add_gauge("x.depth", 2);
    a.merge(b);
    EXPECT_EQ(a.counter("x.hits"), 7);
    EXPECT_EQ(a.counter("y.misses"), 1);
    EXPECT_EQ(a.counter("absent.name"), 0);
    EXPECT_EQ(a.gauge("x.depth"), 7);
}

TEST(ObsSnapshot, ToJsonCarriesEveryInstrument) {
    Snapshot s;
    s.add_counter("cache.hits", 12);
    s.add_gauge("pool.depth", 3);
    Histogram h;
    h.record(100);
    h.record(200);
    s.add_histogram("lat.ns", h.snapshot());
    const std::string json = s.to_json(2);
    EXPECT_NE(json.find("\"cache.hits\": 12"), std::string::npos);
    EXPECT_NE(json.find("\"pool.depth\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"lat.ns\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(ObsRegistry, CreateOnFirstUseReturnsStableInstruments) {
    Registry reg;
    Counter& c1 = reg.counter("a.count", 4);
    Counter& c2 = reg.counter("a.count");
    EXPECT_EQ(&c1, &c2);  // same name, same instrument, shards of first use
    c1.add(5);
    Histogram& h = reg.histogram("a.lat_ns");
    h.record(9);
    reg.gauge("a.depth").set(2);
    const Snapshot s = reg.snapshot();
    EXPECT_EQ(s.counter("a.count"), 5);
    EXPECT_EQ(s.gauge("a.depth"), 2);
    EXPECT_EQ(s.histograms.at("a.lat_ns").count(), 1);
    reg.reset();
    EXPECT_EQ(reg.snapshot().counter("a.count"), 0);
    EXPECT_EQ(&reg.counter("a.count"), &c1);  // reset keeps addresses
}

TEST(ObsRegistry, ConcurrentCreateAndCountStorm) {
    Registry reg;
    const int kThreads = 8;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < 2000; ++i) reg.counter("storm.count", 16).add();
        });
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(reg.snapshot().counter("storm.count"), kThreads * 2000);
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

TEST(ObsTrace, MintIsUniqueAndActiveExactlyWhenEnabled) {
    if (!kCompiledIn) {
        EXPECT_FALSE(QueryTrace::mint().active());
        return;
    }
    {
        EnabledGuard on(true);
        const QueryTrace a = QueryTrace::mint();
        const QueryTrace b = QueryTrace::mint();
        EXPECT_TRUE(a.active());
        EXPECT_TRUE(b.active());
        EXPECT_NE(a.id, b.id);
        EXPECT_GT(a.submit_ns, 0);
    }
    {
        EnabledGuard off(false);
        EXPECT_FALSE(QueryTrace::mint().active());
    }
}

TEST(ObsTrace, SpansNestInStageOrderAndDropWhenFull) {
    if (!kCompiledIn) return;
    EnabledGuard on(true);
    QueryTrace trace = QueryTrace::mint();
    {
        ScopedSpan queue(&trace, Stage::kQueueWait);
    }
    {
        ScopedSpan stamp(&trace, Stage::kStamp);
    }
    {
        ScopedSpan solve(&trace, Stage::kSolve);
    }
    ASSERT_EQ(trace.num_spans, 3);
    EXPECT_EQ(trace.spans[0].stage, Stage::kQueueWait);
    EXPECT_EQ(trace.spans[1].stage, Stage::kStamp);
    EXPECT_EQ(trace.spans[2].stage, Stage::kSolve);
    // Recorded in submission order on one clock: each span begins at or
    // after the previous one ended, and none begins before submit.
    EXPECT_GE(trace.spans[0].begin_ns, trace.submit_ns);
    for (int i = 0; i < trace.num_spans; ++i) {
        EXPECT_LE(trace.spans[i].begin_ns, trace.spans[i].end_ns);
        if (i > 0) EXPECT_GE(trace.spans[i].begin_ns, trace.spans[i - 1].end_ns);
    }
    EXPECT_EQ(trace.last_end_ns(), trace.spans[2].end_ns);
    // Overflow: spans past kMaxSpans are dropped, never written OOB.
    for (int i = 0; i < QueryTrace::kMaxSpans + 3; ++i)
        trace.add(Stage::kFulfil, 1, 2);
    EXPECT_EQ(trace.num_spans, QueryTrace::kMaxSpans);
    // Inactive traces record nothing, and a null trace is a no-op.
    QueryTrace inactive;
    {
        ScopedSpan s1(&inactive, Stage::kSolve);
        ScopedSpan s2(nullptr, Stage::kSolve);
    }
    EXPECT_EQ(inactive.num_spans, 0);
}

TEST(ObsTrace, RingBufferEvictsOldestFirst) {
    if (!kCompiledIn) return;
    EnabledGuard on(true);
    TraceStore store(4);
    EXPECT_EQ(store.capacity(), 4u);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 6; ++i) {
        QueryTrace t = QueryTrace::mint();
        ids.push_back(t.id);
        store.record(t, "transfer");
    }
    EXPECT_EQ(store.recorded(), 6);
    EXPECT_EQ(store.evicted(), 2);
    const std::vector<TraceRecord> dumped = store.dump();
    ASSERT_EQ(dumped.size(), 4u);
    // Oldest two evicted; survivors oldest-first.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(dumped[static_cast<std::size_t>(i)].trace.id,
                  ids[static_cast<std::size_t>(i) + 2]);
        EXPECT_STREQ(dumped[static_cast<std::size_t>(i)].lane, "transfer");
    }
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.recorded(), 6);  // lifetime totals survive clear()
    // Inactive traces are never stored.
    store.record(QueryTrace{}, "pole");
    EXPECT_EQ(store.size(), 0u);
}

// ---------------------------------------------------------------------------
// The serving stack under telemetry: zero observer effect, one snapshot.
// ---------------------------------------------------------------------------

circuit::ParametricSystem test_system() { return small_parametric_rc(30, 2, 77); }

service::StudyServiceOptions service_options() {
    service::StudyServiceOptions opts;
    opts.reduction.s_order = 3;
    opts.reduction.param_order = 2;
    opts.transient.transient.t_stop = 10.0;
    opts.transient.transient.dt = 0.5;
    opts.batcher.max_batch = 24;
    opts.batcher.max_wait_ms = 10.0;
    opts.batcher.threads = 0;
    return opts;
}

void expect_bit_identical(const ZMatrix& a, const ZMatrix& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t k = 0; k < a.raw().size(); ++k) {
        EXPECT_EQ(a.raw()[k].real(), b.raw()[k].real());
        EXPECT_EQ(a.raw()[k].imag(), b.raw()[k].imag());
    }
}

/// Runs the mixed 8-client workload against `session` and checks every
/// answer bitwise against the serve-alone references.
void run_mixed_workload_and_check(
    service::StudySession& session,
    const std::vector<std::vector<ZMatrix>>& ref_transfer,
    const std::vector<service::DelayResult>& ref_delay,
    const std::vector<std::vector<cplx>>& ref_poles) {
    const int kClients = 8;
    const int kFreqs = 4;
    const auto s_of = [](int j) { return cplx(0.0, util::two_pi_f(0.02 + 0.03 * j)); };
    const auto corner_of = [](int c) {
        return std::vector<double>{0.04 * c - 0.15, -0.03 * c + 0.1};
    };
    std::vector<std::vector<service::Future<ZMatrix>>> tf(kClients);
    std::vector<service::Future<service::DelayResult>> df(kClients);
    std::vector<service::Future<std::vector<cplx>>> pf(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
            for (int j = 0; j < kFreqs; ++j)
                tf[c].push_back(session.transfer(corner_of(c), s_of(j)));
            df[c] = session.delay(corner_of(c));
            pf[c] = session.poles(corner_of(c));
        });
    for (std::thread& t : clients) t.join();
    for (int c = 0; c < kClients; ++c) {
        for (int j = 0; j < kFreqs; ++j)
            expect_bit_identical(tf[c][static_cast<std::size_t>(j)].get(),
                                 ref_transfer[static_cast<std::size_t>(c)]
                                             [static_cast<std::size_t>(j)]);
        const service::DelayResult d = df[c].get();
        ASSERT_EQ(d.delay.has_value(),
                  ref_delay[static_cast<std::size_t>(c)].delay.has_value());
        if (d.delay)
            EXPECT_EQ(*d.delay, *ref_delay[static_cast<std::size_t>(c)].delay);
        const std::vector<cplx> poles = pf[c].get();
        const std::vector<cplx>& ref = ref_poles[static_cast<std::size_t>(c)];
        ASSERT_EQ(poles.size(), ref.size());
        for (std::size_t k = 0; k < poles.size(); ++k) {
            EXPECT_EQ(poles[k].real(), ref[k].real());
            EXPECT_EQ(poles[k].imag(), ref[k].imag());
        }
    }
}

TEST(ObsServing, TelemetryOnOffBitIdenticalToServeAlone) {
    const circuit::ParametricSystem sys = test_system();
    const int kClients = 8;
    const int kFreqs = 4;
    const auto s_of = [](int j) { return cplx(0.0, util::two_pi_f(0.02 + 0.03 * j)); };
    const auto corner_of = [](int c) {
        return std::vector<double>{0.04 * c - 0.15, -0.03 * c + 0.1};
    };

    service::ModelCache cache;
    service::StudyService service(cache, service_options());
    service::StudySession& session = service.open(sys);

    // Serve-alone references, computed once (telemetry state is irrelevant
    // to them by the same no-observer-effect contract this test pins).
    std::vector<std::vector<ZMatrix>> ref_transfer(kClients);
    std::vector<service::DelayResult> ref_delay;
    std::vector<std::vector<cplx>> ref_poles;
    for (int c = 0; c < kClients; ++c) {
        for (int j = 0; j < kFreqs; ++j)
            ref_transfer[static_cast<std::size_t>(c)].push_back(
                session.transfer_now(corner_of(c), s_of(j)));
        ref_delay.push_back(session.delay_now(corner_of(c)));
        ref_poles.push_back(session.poles_now(corner_of(c)));
    }

    {
        EnabledGuard on(true);
        run_mixed_workload_and_check(session, ref_transfer, ref_delay, ref_poles);
    }
    {
        EnabledGuard off(false);
        run_mixed_workload_and_check(session, ref_transfer, ref_delay, ref_poles);
    }
}

TEST(ObsServing, ServiceTelemetryIsOneCoherentSnapshot) {
    const circuit::ParametricSystem sys = test_system();
    service::ModelCache cache;
    service::StudyService service(cache, service_options());
    service::StudySession& session = service.open(sys);

    EnabledGuard on(true);
    const obs::Snapshot before = service.telemetry();

    const auto corner = std::vector<double>{0.05, -0.02};
    std::vector<service::Future<ZMatrix>> futures;
    for (int j = 0; j < 6; ++j)
        futures.push_back(
            session.transfer(corner, cplx(0.0, util::two_pi_f(0.02 + 0.01 * j))));
    auto delay = session.delay(corner);
    for (auto& f : futures) f.get();
    delay.get();
    session.flush();

    const obs::Snapshot snap = service.telemetry();

    // One snapshot, every subsystem: batcher/cache/disk/pool/slab/fault
    // counters and the latency histograms, all under their component names.
    EXPECT_GE(snap.counter("batcher.queries") - before.counter("batcher.queries"), 7);
    EXPECT_EQ(snap.counter("model_cache.builds"), 1);
    EXPECT_EQ(snap.counter("disk_store.loads"), 0);  // memory-only cache
    EXPECT_GE(snap.counter("pool.sections"), before.counter("pool.sections"));
    EXPECT_GE(snap.counter("slab_transfer.opened") -
                  before.counter("slab_transfer.opened"),
              6);
    EXPECT_GE(snap.counter("transient.corners"), 1);
    EXPECT_GE(snap.counter("solve.refactorizations"), 1);
    EXPECT_EQ(snap.gauge("service.sessions"), 1);
    if (kCompiledIn) {
        const auto it = snap.histograms.find("transfer.latency_ns");
        ASSERT_NE(it, snap.histograms.end());
        EXPECT_GE(it->second.count(), 6);
        EXPECT_GE(snap.histograms.at("query.solve_ns").count(), 6);
        EXPECT_GE(snap.counter("obs.traces_recorded"),
                  before.counter("obs.traces_recorded") + 7);
    }
    // Serializable end to end.
    const std::string json = snap.to_json();
    EXPECT_NE(json.find("\"batcher.queries\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(ObsServing, FaultInjectorHitsExportedThroughSnapshot) {
    util::FaultInjector& injector = util::FaultInjector::instance();
    injector.clear();
#ifdef VARMOR_FAULT_INJECTION
    const long before = injector.hits("obs_test.point");
    util::ScopedFault fault("obs_test.point",
                            [](const std::string&, const std::string&) {});
    injector.fire("obs_test.point", "");
    injector.fire("obs_test.point", "");
    const obs::Snapshot snap = process_snapshot();
    EXPECT_EQ(snap.counter("fault.obs_test.point"), before + 2);
    EXPECT_EQ(injector.hit_counts().at("obs_test.point"), before + 2);
#else
    EXPECT_TRUE(injector.hit_counts().empty());
#endif
    injector.clear();
}

}  // namespace
}  // namespace varmor::obs
