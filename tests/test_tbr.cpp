#include <gtest/gtest.h>

#include "la/cholesky.h"
#include "la/lu_dense.h"
#include "mor/tbr.h"
#include "mor_test_utils.h"
#include "test_helpers.h"

namespace varmor::mor {
namespace {

using la::Matrix;
using varmor::testing::small_parametric_rc;

TEST(Lyapunov, SolvesHandComputedScalar) {
    // a x + x a + w = 0 with a = -2, w = 4  =>  x = 1.
    Matrix a{{-2.0}};
    Matrix w{{4.0}};
    Matrix x = solve_lyapunov(a, w);
    EXPECT_NEAR(x(0, 0), 1.0, 1e-10);
}

TEST(Lyapunov, ResidualSmallOnRandomStableSystems) {
    util::Rng rng(1);
    for (int trial = 0; trial < 3; ++trial) {
        const int n = 12;
        Matrix a = varmor::testing::random_matrix(n, n, rng);
        for (int i = 0; i < n; ++i) a(i, i) -= n;  // strongly stable
        Matrix b = varmor::testing::random_matrix(n, 2, rng);
        Matrix w = la::matmul(b, la::transpose(b));
        Matrix x = solve_lyapunov(a, w);
        Matrix residual = la::matmul(a, x) + la::matmul(x, la::transpose(a)) + w;
        EXPECT_LE(la::norm_fro(residual), 1e-8 * (1 + la::norm_fro(w)));
        // Controllability gramian of a stable system is PSD.
        EXPECT_TRUE(la::is_positive_semidefinite(la::symmetric_part(x), 1e-8));
    }
}

TEST(Lyapunov, UnstableSystemThrows) {
    Matrix a{{1.0}};  // unstable
    Matrix w{{1.0}};
    EXPECT_THROW(solve_lyapunov(a, w), Error);
}

TEST(Tbr, HankelValuesDescendingAndPositive) {
    circuit::ParametricSystem sys = small_parametric_rc(20, 0, 2, 1);
    TbrResult r = tbr(sys.g0, sys.c0, sys.b, sys.l, {});
    ASSERT_FALSE(r.hankel.empty());
    for (std::size_t i = 0; i + 1 < r.hankel.size(); ++i)
        EXPECT_GE(r.hankel[i], r.hankel[i + 1] - 1e-12);
    EXPECT_GT(r.hankel[0], 0.0);
}

TEST(Tbr, ReducedTransferMatchesFullAtLowFrequency) {
    circuit::ParametricSystem sys = small_parametric_rc(25, 0, 3, 1);
    TbrOptions opts;
    opts.order = 8;
    TbrResult r = tbr(sys.g0, sys.c0, sys.b, sys.l, opts);

    for (double w : {0.01, 0.1, 1.0}) {
        const la::cplx s(0.0, w);
        la::ZMatrix yfull = la::matmul(
            la::transpose(la::to_complex(sys.l)),
            la::solve_dense(la::pencil(sys.g0.to_dense(), sys.c0.to_dense(), s),
                            la::to_complex(sys.b)));
        la::ZMatrix yred = r.transfer(s);
        EXPECT_LE(la::norm_max(yred - yfull),
                  r.error_bound() + 1e-8 * (1 + la::norm_max(yfull)))
            << "frequency " << w;
    }
}

TEST(Tbr, ErrorBoundHonoured) {
    // H-inf bound: |H(jw) - Hr(jw)| <= 2 * sum of discarded Hankel values,
    // for every w. Spot-check a frequency grid.
    circuit::ParametricSystem sys = small_parametric_rc(30, 0, 4, 1);
    for (int order : {2, 4, 8}) {
        TbrOptions opts;
        opts.order = order;
        TbrResult r = tbr(sys.g0, sys.c0, sys.b, sys.l, opts);
        for (double w : {0.0, 0.05, 0.2, 0.5, 2.0, 10.0}) {
            const la::cplx s(0.0, w);
            la::ZMatrix yfull = la::matmul(
                la::transpose(la::to_complex(sys.l)),
                la::solve_dense(la::pencil(sys.g0.to_dense(), sys.c0.to_dense(), s),
                                la::to_complex(sys.b)));
            const double err = la::norm_max(r.transfer(s) - yfull);
            EXPECT_LE(err, r.error_bound() * 1.01 + 1e-10) << "order " << order << " w " << w;
        }
    }
}

TEST(Tbr, ExactWhenOrderEqualsStateCount) {
    circuit::ParametricSystem sys = small_parametric_rc(10, 0, 5, 1);
    TbrOptions opts;
    opts.order = 10;
    TbrResult r = tbr(sys.g0, sys.c0, sys.b, sys.l, opts);
    const la::cplx s(0.0, 0.3);
    la::ZMatrix yfull = la::matmul(
        la::transpose(la::to_complex(sys.l)),
        la::solve_dense(la::pencil(sys.g0.to_dense(), sys.c0.to_dense(), s),
                        la::to_complex(sys.b)));
    EXPECT_LE(la::norm_max(r.transfer(s) - yfull), 1e-7 * (1 + la::norm_max(yfull)));
}

TEST(Tbr, TbrAtFreezesParametricSystem) {
    circuit::ParametricSystem sys = small_parametric_rc(15, 2, 6, 1);
    TbrOptions opts;
    opts.order = 6;
    const std::vector<double> p{0.5, -0.5};
    TbrResult r = tbr_at(sys, p, opts);
    const la::cplx s(0.0, 0.2);
    la::ZMatrix yfull = la::matmul(
        la::transpose(la::to_complex(sys.l)),
        la::solve_dense(la::pencil(sys.g_at(p).to_dense(), sys.c_at(p).to_dense(), s),
                        la::to_complex(sys.b)));
    EXPECT_LE(la::norm_max(r.transfer(s) - yfull),
              r.error_bound() + 1e-8 * (1 + la::norm_max(yfull)));
}

TEST(Tbr, InvalidOrderThrows) {
    circuit::ParametricSystem sys = small_parametric_rc(10, 0, 7, 1);
    TbrOptions bad;
    bad.order = 0;
    EXPECT_THROW(tbr(sys.g0, sys.c0, sys.b, sys.l, bad), Error);
}

}  // namespace
}  // namespace varmor::mor
