// Additional dense-LA stress tests: ill conditioning, scaling invariance,
// structured matrices with known factorizations/spectra.

#include <cmath>
#include <gtest/gtest.h>

#include "la/cholesky.h"
#include "la/eig.h"
#include "la/eig_sym.h"
#include "la/lu_dense.h"
#include "la/orth.h"
#include "la/qr.h"
#include "la/svd.h"
#include "test_helpers.h"
#include "util/constants.h"

namespace varmor::la {
namespace {

using testing::expect_near;
using testing::random_matrix;

Matrix hilbert(int n) {
    Matrix h(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i) h(i, j) = 1.0 / (i + j + 1.0);
    return h;
}

TEST(LaExtra, HilbertSvdKnownLeadingSingularValue) {
    // sigma_1 of the 5x5 Hilbert matrix (well-conditioned in sigma_1).
    SvdResult f = svd(hilbert(5));
    EXPECT_NEAR(f.s[0], 1.5670506910982311, 1e-10);
    // Tiny trailing singular value exists (cond ~ 4.7e5).
    EXPECT_LT(f.s[4], 1e-4);
    EXPECT_GT(f.s[0] / f.s[4], 1e4);
}

TEST(LaExtra, HilbertCholeskyStillFactors) {
    // Hilbert is SPD though terribly conditioned; Cholesky must succeed up
    // to moderate sizes and reconstruct.
    Matrix h = hilbert(8);
    Cholesky c(h);
    expect_near(matmul(c.l(), transpose(c.l())), h, 1e-10);
}

TEST(LaExtra, SvdScalingEquivariance) {
    util::Rng rng(1);
    Matrix a = random_matrix(10, 6, rng);
    SvdResult f1 = svd(a);
    Matrix a1000 = a;
    for (double& v : a1000.raw()) v *= 1000.0;
    SvdResult f2 = svd(a1000);
    for (std::size_t i = 0; i < f1.s.size(); ++i)
        EXPECT_NEAR(f2.s[i], 1000.0 * f1.s[i], 1e-9 * f2.s[0]);
}

TEST(LaExtra, LuSolveBadlyScaledSystem) {
    // Rows scaled across 12 orders of magnitude: partial pivoting must cope.
    util::Rng rng(2);
    const int n = 10;
    Matrix a = testing::random_dd_matrix(n, rng);
    Vector xs(n);
    for (int i = 0; i < n; ++i) xs[i] = rng.uniform(-1, 1);
    for (int i = 0; i < n; ++i) {
        const double s = std::pow(10.0, -12.0 + 24.0 * i / (n - 1));
        for (int j = 0; j < n; ++j) a(i, j) *= s;
    }
    Vector b = matvec(a, xs);
    Vector x = solve_dense(a, b);
    EXPECT_LE(norm2(x - xs), 1e-7 * (1 + norm2(xs)));
}

TEST(LaExtra, EigOfStiffnessMatrixKnownSpectrum) {
    // 1-D Laplacian: eigenvalues 2 - 2 cos(k pi / (n+1)).
    const int n = 12;
    Matrix a(n, n);
    for (int i = 0; i < n; ++i) {
        a(i, i) = 2.0;
        if (i > 0) {
            a(i, i - 1) = -1.0;
            a(i - 1, i) = -1.0;
        }
    }
    SymEigResult e = eig_symmetric(a);
    for (int k = 1; k <= n; ++k) {
        const double expected = 2.0 - 2.0 * std::cos(k * util::pi / (n + 1));
        EXPECT_NEAR(e.values[static_cast<std::size_t>(k - 1)], expected, 1e-10);
    }
}

TEST(LaExtra, FrancisQrOnNearlyDefectiveMatrix) {
    // Jordan-like block with tiny coupling: eigenvalues are eps-separated;
    // QR must still return values near 1 without dying.
    const double eps = 1e-8;
    Matrix a{{1.0, 1.0, 0.0}, {0.0, 1.0, 1.0}, {eps, 0.0, 1.0}};
    auto w = eig_values(a);
    for (const cplx& z : w) EXPECT_NEAR(std::abs(z - cplx(1.0)), std::cbrt(eps), 2e-3);
}

TEST(LaExtra, QrOfOrthogonalMatrixGivesIdentityR) {
    util::Rng rng(3);
    Matrix q0 = orthonormalize(random_matrix(8, 8, rng));
    QrResult f = qr(q0);
    // R should be diagonal +-1 (orthonormal input).
    for (int j = 0; j < 8; ++j)
        for (int i = 0; i < j; ++i) EXPECT_NEAR(f.r(i, j), 0.0, 1e-10);
    for (int j = 0; j < 8; ++j) EXPECT_NEAR(std::abs(f.r(j, j)), 1.0, 1e-10);
}

TEST(LaExtra, OrthDropToleranceControlsDeflation) {
    util::Rng rng(4);
    Matrix a = random_matrix(10, 2, rng);
    Matrix nearly(10, 3);
    for (int i = 0; i < 10; ++i) {
        nearly(i, 0) = a(i, 0);
        nearly(i, 1) = a(i, 1);
        // Almost dependent: in-span part plus a 1e-8 out-of-span component.
        nearly(i, 2) = a(i, 0) + 1e-8 * rng.uniform(-1.0, 1.0);
    }
    OrthOptions loose;
    loose.drop_tol = 1e-6;
    OrthOptions tight;
    tight.drop_tol = 1e-12;
    EXPECT_EQ(orthonormalize(nearly, loose).cols(), 2);
    EXPECT_EQ(orthonormalize(nearly, tight).cols(), 3);
}

TEST(LaExtra, DeterminantProductProperty) {
    util::Rng rng(5);
    Matrix a = testing::random_dd_matrix(6, rng);
    Matrix b = testing::random_dd_matrix(6, rng);
    const double da = DenseLu<double>(a).determinant();
    const double db = DenseLu<double>(b).determinant();
    const double dab = DenseLu<double>(matmul(a, b)).determinant();
    EXPECT_NEAR(dab, da * db, 1e-8 * std::abs(da * db));
}

class ComplexLuProperty : public ::testing::TestWithParam<int> {};

TEST_P(ComplexLuProperty, PencilSolveAtManyFrequencies) {
    // The frequency-sweep inner loop, stress-tested: (G + j w C) x = b over
    // 6 decades of w.
    const int n = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(n) * 3 + 7);
    Matrix g = testing::random_spd_matrix(n, rng);
    Matrix c = testing::random_spd_matrix(n, rng);
    Vector b(n);
    for (int i = 0; i < n; ++i) b[i] = rng.uniform(-1, 1);
    for (double w : {1e-3, 1e-1, 1e1, 1e3}) {
        ZMatrix p = pencil(g, c, cplx(0.0, w));
        ZVector x = solve_dense(p, to_complex(b));
        ZVector r = matvec(p, x) - to_complex(b);
        EXPECT_LE(norm2(r), 1e-9 * (1 + norm2(b))) << "w = " << w;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ComplexLuProperty, ::testing::Values(4, 12, 24, 48));

}  // namespace
}  // namespace varmor::la
