#include <gtest/gtest.h>

#include "la/cholesky.h"
#include "test_helpers.h"

namespace varmor::la {
namespace {

using testing::expect_near;
using testing::random_spd_matrix;

TEST(Cholesky, FactorsHandComputedSpd) {
    Matrix a{{4.0, 2.0}, {2.0, 5.0}};
    Cholesky c(a);
    EXPECT_NEAR(c.l()(0, 0), 2.0, 1e-14);
    EXPECT_NEAR(c.l()(1, 0), 1.0, 1e-14);
    EXPECT_NEAR(c.l()(1, 1), 2.0, 1e-14);
}

TEST(Cholesky, ReconstructsA) {
    util::Rng rng(1);
    Matrix a = random_spd_matrix(10, rng);
    Cholesky c(a);
    expect_near(matmul(c.l(), transpose(c.l())), a, 1e-10);
}

TEST(Cholesky, SolveResidual) {
    util::Rng rng(2);
    Matrix a = random_spd_matrix(12, rng);
    Vector b(12);
    for (int i = 0; i < 12; ++i) b[i] = rng.uniform(-1, 1);
    Vector x = Cholesky(a).solve(b);
    EXPECT_LE(norm2(matvec(a, x) - b), 1e-9 * (1 + norm2(b)));
}

TEST(Cholesky, IndefiniteThrows) {
    Matrix a{{1.0, 0.0}, {0.0, -1.0}};
    EXPECT_THROW(Cholesky{a}, Error);
}

TEST(Cholesky, NonSquareThrows) {
    EXPECT_THROW(Cholesky{Matrix(2, 3)}, Error);
}

TEST(Psd, PositiveDefiniteIsPsd) {
    util::Rng rng(3);
    EXPECT_TRUE(is_positive_semidefinite(random_spd_matrix(6, rng)));
}

TEST(Psd, SingularPsdPasses) {
    // Laplacian of a path graph: PSD with a zero eigenvalue.
    Matrix a{{1.0, -1.0, 0.0}, {-1.0, 2.0, -1.0}, {0.0, -1.0, 1.0}};
    EXPECT_TRUE(is_positive_semidefinite(a));
}

TEST(Psd, IndefiniteFails) {
    Matrix a{{0.0, 1.0}, {1.0, 0.0}};
    EXPECT_FALSE(is_positive_semidefinite(a));
}

TEST(Psd, NegativeDefiniteFails) {
    Matrix a{{-2.0, 0.0}, {0.0, -3.0}};
    EXPECT_FALSE(is_positive_semidefinite(a));
}

}  // namespace
}  // namespace varmor::la
