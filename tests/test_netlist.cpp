#include <gtest/gtest.h>

#include "circuit/netlist.h"

namespace varmor::circuit {
namespace {

TEST(Netlist, NodeAllocation) {
    Netlist net;
    EXPECT_EQ(net.add_node(), 1);
    EXPECT_EQ(net.add_node(), 2);
    EXPECT_EQ(net.num_nodes(), 2);
}

TEST(Netlist, ResistorStoredAsConductance) {
    Netlist net;
    const int a = net.add_node();
    net.add_resistor(a, 0, 4.0);
    ASSERT_EQ(net.elements().size(), 1u);
    EXPECT_EQ(net.elements()[0].kind, ElementKind::resistor);
    EXPECT_DOUBLE_EQ(net.elements()[0].value, 0.25);
}

TEST(Netlist, ElementValidation) {
    Netlist net;
    const int a = net.add_node();
    const int b = net.add_node();
    EXPECT_THROW(net.add_resistor(a, a, 1.0), Error);     // same node
    EXPECT_THROW(net.add_resistor(a, b, 0.0), Error);     // nonpositive
    EXPECT_THROW(net.add_resistor(a, b, -2.0), Error);
    EXPECT_THROW(net.add_capacitor(a, b, 0.0), Error);
    EXPECT_THROW(net.add_inductor(a, b, -1e-9), Error);
    EXPECT_THROW(net.add_resistor(-1, b, 1.0), Error);    // negative node
}

TEST(Netlist, SensitivityLengthValidation) {
    Netlist net(2);
    const int a = net.add_node();
    net.add_resistor(a, 0, 1.0, {0.1, 0.2});         // ok
    EXPECT_THROW(net.add_resistor(a, 0, 1.0, {0.1}), Error);  // wrong length
    // Empty sensitivity defaults to zeros of the right length.
    net.add_capacitor(a, 0, 1e-15);
    EXPECT_EQ(net.elements().back().dvalue.size(), 2u);
    EXPECT_EQ(net.elements().back().dvalue[0], 0.0);
}

TEST(Netlist, PortValidation) {
    Netlist net;
    const int a = net.add_node();
    net.add_port(a);
    EXPECT_EQ(net.num_ports(), 1);
    EXPECT_THROW(net.add_port(0), Error);    // ground is not a port
    EXPECT_THROW(net.add_port(99), Error);   // nonexistent node
}

TEST(Netlist, MnaSizeCountsInductorCurrents) {
    Netlist net;
    const int a = net.add_node();
    const int b = net.add_node();
    net.add_resistor(a, b, 1.0);
    EXPECT_EQ(net.mna_size(), 2);
    net.add_inductor(a, b, 1e-9);
    EXPECT_EQ(net.mna_size(), 3);
    EXPECT_EQ(net.num_inductors(), 1);
}

TEST(Netlist, EnsureNodes) {
    Netlist net;
    net.ensure_nodes(5);
    EXPECT_EQ(net.num_nodes(), 5);
    net.add_resistor(3, 5, 1.0);  // arithmetic node ids work
    EXPECT_EQ(net.num_nodes(), 5);
    EXPECT_THROW(net.ensure_nodes(-1), Error);
}

}  // namespace
}  // namespace varmor::circuit
