#include <gtest/gtest.h>

#include "mor/awe.h"
#include "la/lu_dense.h"
#include "mor/prima.h"
#include "mor/reduced_model.h"
#include "mor_test_utils.h"

namespace varmor::mor {
namespace {

using la::cplx;
using la::Vector;
using varmor::testing::small_parametric_rc;

TEST(Awe, SingleRcExactPoleAndResidue) {
    // H(s) = 1/(g + s c): one pole at -g/c with residue 1/c.
    circuit::Netlist net;
    const int a = net.add_node();
    net.add_resistor(a, 0, 2.0);    // g = 0.5
    net.add_capacitor(a, 0, 0.25);  // c = 0.25
    net.add_port(a);
    circuit::ParametricSystem sys = assemble_mna(net);
    AweOptions opts;
    opts.poles = 1;
    AweModel m = awe(sys.g0, sys.c0, sys.b.col(0), sys.l.col(0), opts);
    ASSERT_EQ(m.poles.size(), 1u);
    EXPECT_NEAR(m.poles[0].real(), -2.0, 1e-10);
    EXPECT_NEAR(m.residues[0].real(), 4.0, 1e-9);  // 1/c
    EXPECT_TRUE(m.stable());
}

TEST(Awe, MatchesTransferOfSmallSystemExactly) {
    // With q = n the Pade approximation is the exact (rational) transfer fn.
    circuit::ParametricSystem sys = small_parametric_rc(4, 0, 201, 1);
    AweOptions opts;
    opts.poles = 4;
    AweModel m = awe(sys.g0, sys.c0, sys.b.col(0), sys.l.col(0), opts);
    for (double w : {0.01, 0.1, 1.0, 10.0}) {
        const cplx s(0.0, w);
        la::ZMatrix yfull = la::matmul(
            la::transpose(la::to_complex(sys.l)),
            la::solve_dense(la::pencil(sys.g0.to_dense(), sys.c0.to_dense(), s),
                            la::to_complex(sys.b)));
        EXPECT_LE(std::abs(m.transfer(s) - yfull(0, 0)), 1e-7 * (1 + std::abs(yfull(0, 0))))
            << "w = " << w;
    }
}

TEST(Awe, ModelMomentsMatchComputedMoments) {
    // The defining Pade property: the model reproduces the first 2q moments.
    circuit::ParametricSystem sys = small_parametric_rc(20, 0, 202, 1);
    AweOptions opts;
    opts.poles = 3;
    AweModel m = awe(sys.g0, sys.c0, sys.b.col(0), sys.l.col(0), opts);
    ASSERT_EQ(m.moments.size(), 6u);
    for (int j = 0; j < 6; ++j) {
        const cplx mm = m.model_moment(j);
        EXPECT_NEAR(mm.real(), m.moments[static_cast<std::size_t>(j)],
                    1e-6 * (1 + std::abs(m.moments[static_cast<std::size_t>(j)])))
            << "moment " << j;
        EXPECT_NEAR(mm.imag(), 0.0, 1e-6 * (1 + std::abs(m.moments[static_cast<std::size_t>(j)])));
    }
}

TEST(Awe, LowOrderStableOnRcTree) {
    circuit::ParametricSystem sys = small_parametric_rc(50, 0, 203, 1);
    for (int q : {1, 2, 3}) {
        AweOptions opts;
        opts.poles = q;
        AweModel m = awe(sys.g0, sys.c0, sys.b.col(0), sys.l.col(0), opts);
        EXPECT_TRUE(m.stable()) << "order " << q;
    }
}

TEST(Awe, AgreesWithPrimaAtLowFrequencies) {
    circuit::ParametricSystem sys = small_parametric_rc(40, 0, 204, 1);
    AweOptions aopts;
    aopts.poles = 4;
    AweModel m = awe(sys.g0, sys.c0, sys.b.col(0), sys.l.col(0), aopts);
    PrimaOptions popts;
    popts.blocks = 8;
    ReducedModel prima = project(sys, prima_basis(sys.g0, sys.c0, sys.b, popts));
    // Both match the same leading moments, so they agree in the expansion
    // region (small |s| relative to the system's time constants).
    for (double w : {0.001, 0.01}) {
        const cplx s(0.0, w);
        const cplx h_awe = m.transfer(s);
        const cplx h_prima = prima.transfer(s, {})(0, 0);
        EXPECT_LE(std::abs(h_awe - h_prima), 1e-5 * (1 + std::abs(h_prima))) << "w " << w;
    }
}

TEST(Awe, InvalidInputsThrow) {
    circuit::ParametricSystem sys = small_parametric_rc(10, 0, 205, 1);
    AweOptions bad;
    bad.poles = 0;
    EXPECT_THROW(awe(sys.g0, sys.c0, sys.b.col(0), sys.l.col(0), bad), Error);
    EXPECT_THROW(awe(sys.g0, sys.c0, Vector(3), sys.l.col(0), {}), Error);
}

}  // namespace
}  // namespace varmor::mor
