// service::ModelCache — the content-addressed registry under the serving
// layer. The contracts pinned here: cache keys are stable and sensitive to
// every value-affecting input; a warm hit performs ZERO reduction work
// (builds counter); the disk tier round-trips models bit-identically
// (eviction + reload); corruption is detected and repaired by rebuild;
// concurrent misses coalesce onto one build.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "mor/lowrank_pmor.h"
#include "mor/model_io.h"
#include "mor_test_utils.h"
#include "service/model_cache.h"

namespace varmor::service {
namespace {

using varmor::testing::small_parametric_rc;

circuit::ParametricSystem test_system() { return small_parametric_rc(30, 2, 91); }

mor::LowRankPmorOptions small_reduction() {
    mor::LowRankPmorOptions opts;
    opts.s_order = 3;
    opts.param_order = 2;
    return opts;
}

/// A disk-tier directory that is empty at test start (the cache persists
/// across processes BY DESIGN, so a rerun would otherwise see the previous
/// run's models and skew the build counters).
std::string fresh_disk_dir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/// Bitwise model equality via the stable content hash plus a direct raw
/// comparison of the nominal blocks (hash equality alone could in principle
/// collide; together they pin the bit-identity contract).
void expect_bit_identical(const mor::ReducedModel& a, const mor::ReducedModel& b) {
    EXPECT_EQ(mor::model_content_hash(a), mor::model_content_hash(b));
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(a.g0.raw() == b.g0.raw());
    EXPECT_TRUE(a.c0.raw() == b.c0.raw());
    EXPECT_TRUE(a.b.raw() == b.b.raw());
    EXPECT_TRUE(a.l.raw() == b.l.raw());
}

TEST(CacheKey, StableAndSensitive) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions opts = small_reduction();

    // Deterministic: the same inputs always produce the same key (this is
    // what makes the disk tier shareable across processes).
    EXPECT_EQ(cache_key(sys, opts).value, cache_key(sys, opts).value);
    EXPECT_EQ(cache_key(sys, opts).hex().size(), 16u);

    // Every value-affecting reduction option changes the key.
    mor::LowRankPmorOptions o2 = opts;
    o2.s_order += 1;
    EXPECT_NE(cache_key(sys, opts).value, cache_key(sys, o2).value);
    o2 = opts;
    o2.rank += 1;
    EXPECT_NE(cache_key(sys, opts).value, cache_key(sys, o2).value);
    o2 = opts;
    o2.include_adjoint = !o2.include_adjoint;
    EXPECT_NE(cache_key(sys, opts).value, cache_key(sys, o2).value);
    o2 = opts;
    o2.orth.drop_tol *= 10.0;
    EXPECT_NE(cache_key(sys, opts).value, cache_key(sys, o2).value);

    // Pointer-valued options do NOT change the key: they move work around
    // without changing the resulting model.
    o2 = opts;
    const sparse::SpluSymbolic sym = sparse::SpluSymbolic::analyze(sys.g0);
    o2.g0_symbolic = &sym;
    EXPECT_EQ(cache_key(sys, opts).value, cache_key(sys, o2).value);

    // One ulp in one matrix entry changes the key.
    circuit::ParametricSystem tweaked = sys;
    tweaked.g0.values()[0] = std::nextafter(tweaked.g0.values()[0], 1e300);
    EXPECT_NE(cache_key(sys, opts).value, cache_key(tweaked, opts).value);

    // A different system changes the key.
    EXPECT_NE(cache_key(sys, opts).value,
              cache_key(small_parametric_rc(31, 2, 91), opts).value);
}

TEST(ModelCache, WarmHitPerformsZeroReductionWork) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = small_reduction();
    const CacheKey key = cache_key(sys, ropts);

    ModelCache cache;
    std::atomic<int> built{0};
    auto builder = [&] {
        ++built;
        return mor::lowrank_pmor(sys, ropts).model;
    };

    const ModelCache::ModelPtr first = cache.get_or_build(key, builder);
    EXPECT_EQ(built.load(), 1);
    EXPECT_EQ(cache.stats().builds, 1);

    // Warm hit: same pointer, no builder invocation.
    const ModelCache::ModelPtr second = cache.get_or_build(key, builder);
    EXPECT_EQ(built.load(), 1);
    EXPECT_EQ(second.get(), first.get());
    EXPECT_EQ(cache.stats().memory_hits, 1);

    // A different key builds its own model.
    mor::LowRankPmorOptions other = ropts;
    other.s_order += 1;
    (void)cache.get_or_build(cache_key(sys, other),
                             [&] { return mor::lowrank_pmor(sys, other).model; });
    EXPECT_EQ(cache.stats().builds, 2);
}

TEST(ModelCache, DiskTierEvictionAndReloadBitIdentity) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = small_reduction();
    const CacheKey key = cache_key(sys, ropts);

    ModelCacheOptions copts;
    copts.disk_dir = fresh_disk_dir("varmor_cache_evict");
    ModelCache cache(copts);

    const mor::ReducedModel reference = mor::lowrank_pmor(sys, ropts).model;
    const ModelCache::ModelPtr built = cache.get_or_build(
        key, [&] { return mor::lowrank_pmor(sys, ropts).model; });
    expect_bit_identical(*built, reference);

    // The write-through copy landed on disk under the key's hex stem, with
    // the key recorded in its metadata.
    mor::ModelMeta meta;
    const mor::ReducedModel on_disk = mor::read_model_file(cache.disk_path(key), &meta);
    EXPECT_EQ(meta.cache_key, key.hex());
    expect_bit_identical(on_disk, reference);

    // Evict the memory tier; the next request must come back from disk —
    // bit-identical, with zero reduction work.
    cache.evict_memory();
    EXPECT_EQ(cache.memory_size(), 0);
    const ModelCache::ModelPtr reloaded = cache.get_or_build(
        key, [&]() -> mor::ReducedModel {
            ADD_FAILURE() << "builder must not run on a disk hit";
            return mor::lowrank_pmor(sys, ropts).model;
        });
    expect_bit_identical(*reloaded, reference);
    EXPECT_EQ(cache.stats().builds, 1);
    EXPECT_EQ(cache.stats().disk_hits, 1);
}

TEST(ModelCache, LruEvictsLeastRecentlyUsed) {
    const circuit::ParametricSystem sys = test_system();
    ModelCacheOptions copts;
    copts.memory_capacity = 2;
    ModelCache cache(copts);

    mor::LowRankPmorOptions o1 = small_reduction();
    mor::LowRankPmorOptions o2 = small_reduction();
    o2.s_order = 4;
    mor::LowRankPmorOptions o3 = small_reduction();
    o3.s_order = 2;
    const CacheKey k1 = cache_key(sys, o1), k2 = cache_key(sys, o2),
                   k3 = cache_key(sys, o3);

    auto build = [&](const mor::LowRankPmorOptions& o) {
        return [&sys, o] { return mor::lowrank_pmor(sys, o).model; };
    };
    (void)cache.get_or_build(k1, build(o1));
    (void)cache.get_or_build(k2, build(o2));
    (void)cache.get_or_build(k1, build(o1));  // bump k1 to most-recent
    (void)cache.get_or_build(k3, build(o3));  // evicts k2 (the LRU entry)

    EXPECT_EQ(cache.memory_size(), 2);
    EXPECT_EQ(cache.stats().evictions, 1);
    EXPECT_EQ(cache.stats().builds, 3);

    // k1 survived the eviction (it was bumped); k2 did not (memory-only
    // cache, so it re-builds).
    (void)cache.get_or_build(k1, build(o1));
    EXPECT_EQ(cache.stats().builds, 3);
    (void)cache.get_or_build(k2, build(o2));
    EXPECT_EQ(cache.stats().builds, 4);
}

TEST(ModelCache, CorruptDiskFileIsRebuiltNotServed) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = small_reduction();
    const CacheKey key = cache_key(sys, ropts);

    ModelCacheOptions copts;
    copts.disk_dir = fresh_disk_dir("varmor_cache_corrupt");
    ModelCache cache(copts);
    (void)cache.get_or_build(key, [&] { return mor::lowrank_pmor(sys, ropts).model; });
    EXPECT_EQ(cache.stats().builds, 1);

    // Corrupt one payload digit: the file still parses, but its recorded
    // content hash no longer matches — the integrity gate must reject it.
    {
        std::ifstream in(cache.disk_path(key));
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        const std::size_t pos = text.find("G0\n");
        ASSERT_NE(pos, std::string::npos);
        text[pos + 3] = text[pos + 3] == '1' ? '2' : '1';
        std::ofstream out(cache.disk_path(key));
        out << text;
    }
    cache.evict_memory();
    (void)cache.get_or_build(key, [&] { return mor::lowrank_pmor(sys, ropts).model; });
    EXPECT_EQ(cache.stats().builds, 2);
    EXPECT_EQ(cache.stats().disk_hits, 0);
}

TEST(ModelCache, ConcurrentMissesCoalesceOntoOneBuild) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = small_reduction();
    const CacheKey key = cache_key(sys, ropts);

    ModelCache cache;
    std::atomic<int> built{0};
    std::vector<ModelCache::ModelPtr> results(6);
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < results.size(); ++t)
        clients.emplace_back([&, t] {
            results[t] = cache.get_or_build(key, [&] {
                ++built;
                return mor::lowrank_pmor(sys, ropts).model;
            });
        });
    for (std::thread& c : clients) c.join();

    EXPECT_EQ(built.load(), 1);
    EXPECT_EQ(cache.stats().builds, 1);
    for (const auto& r : results) {
        ASSERT_TRUE(r != nullptr);
        EXPECT_EQ(r.get(), results[0].get());
    }
}

TEST(ModelCache, LookupProbesWithoutBuilding) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = small_reduction();
    const CacheKey key = cache_key(sys, ropts);

    ModelCache cache;
    EXPECT_EQ(cache.lookup(key), nullptr);
    (void)cache.get_or_build(key, [&] { return mor::lowrank_pmor(sys, ropts).model; });
    EXPECT_NE(cache.lookup(key), nullptr);
    EXPECT_TRUE(cache.disk_path(key).empty());  // memory-only configuration
}

}  // namespace
}  // namespace varmor::service
