// service::ModelCache — the content-addressed registry under the serving
// layer. The contracts pinned here: cache keys are stable and sensitive to
// every value-affecting input; a warm hit performs ZERO reduction work
// (builds counter); the disk tier round-trips models bit-identically
// (eviction + reload); corruption is detected and repaired by rebuild;
// concurrent misses coalesce onto one build.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "mor/lowrank_pmor.h"
#include "mor/model_io.h"
#include "mor_test_utils.h"
#include "service/model_cache.h"
#include "util/fault_injection.h"

namespace varmor::service {
namespace {

using varmor::testing::small_parametric_rc;

circuit::ParametricSystem test_system() { return small_parametric_rc(30, 2, 91); }

mor::LowRankPmorOptions small_reduction() {
    mor::LowRankPmorOptions opts;
    opts.s_order = 3;
    opts.param_order = 2;
    return opts;
}

/// A disk-tier directory that is empty at test start (the cache persists
/// across processes BY DESIGN, so a rerun would otherwise see the previous
/// run's models and skew the build counters).
std::string fresh_disk_dir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/// Bitwise model equality via the stable content hash plus a direct raw
/// comparison of the nominal blocks (hash equality alone could in principle
/// collide; together they pin the bit-identity contract).
void expect_bit_identical(const mor::ReducedModel& a, const mor::ReducedModel& b) {
    EXPECT_EQ(mor::model_content_hash(a), mor::model_content_hash(b));
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(a.g0.raw() == b.g0.raw());
    EXPECT_TRUE(a.c0.raw() == b.c0.raw());
    EXPECT_TRUE(a.b.raw() == b.b.raw());
    EXPECT_TRUE(a.l.raw() == b.l.raw());
}

TEST(CacheKey, StableAndSensitive) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions opts = small_reduction();

    // Deterministic: the same inputs always produce the same key (this is
    // what makes the disk tier shareable across processes).
    EXPECT_EQ(cache_key(sys, opts).value, cache_key(sys, opts).value);
    EXPECT_EQ(cache_key(sys, opts).hex().size(), 16u);

    // Every value-affecting reduction option changes the key.
    mor::LowRankPmorOptions o2 = opts;
    o2.s_order += 1;
    EXPECT_NE(cache_key(sys, opts).value, cache_key(sys, o2).value);
    o2 = opts;
    o2.rank += 1;
    EXPECT_NE(cache_key(sys, opts).value, cache_key(sys, o2).value);
    o2 = opts;
    o2.include_adjoint = !o2.include_adjoint;
    EXPECT_NE(cache_key(sys, opts).value, cache_key(sys, o2).value);
    o2 = opts;
    o2.orth.drop_tol *= 10.0;
    EXPECT_NE(cache_key(sys, opts).value, cache_key(sys, o2).value);

    // Pointer-valued options do NOT change the key: they move work around
    // without changing the resulting model.
    o2 = opts;
    const sparse::SpluSymbolic sym = sparse::SpluSymbolic::analyze(sys.g0);
    o2.g0_symbolic = &sym;
    EXPECT_EQ(cache_key(sys, opts).value, cache_key(sys, o2).value);

    // One ulp in one matrix entry changes the key.
    circuit::ParametricSystem tweaked = sys;
    tweaked.g0.values()[0] = std::nextafter(tweaked.g0.values()[0], 1e300);
    EXPECT_NE(cache_key(sys, opts).value, cache_key(tweaked, opts).value);

    // A different system changes the key.
    EXPECT_NE(cache_key(sys, opts).value,
              cache_key(small_parametric_rc(31, 2, 91), opts).value);
}

TEST(ModelCache, WarmHitPerformsZeroReductionWork) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = small_reduction();
    const CacheKey key = cache_key(sys, ropts);

    ModelCache cache;
    std::atomic<int> built{0};
    auto builder = [&] {
        ++built;
        return mor::lowrank_pmor(sys, ropts).model;
    };

    const ModelCache::ModelPtr first = cache.get_or_build(key, builder);
    EXPECT_EQ(built.load(), 1);
    EXPECT_EQ(cache.stats().builds, 1);

    // Warm hit: same pointer, no builder invocation.
    const ModelCache::ModelPtr second = cache.get_or_build(key, builder);
    EXPECT_EQ(built.load(), 1);
    EXPECT_EQ(second.get(), first.get());
    EXPECT_EQ(cache.stats().memory_hits, 1);

    // A different key builds its own model.
    mor::LowRankPmorOptions other = ropts;
    other.s_order += 1;
    (void)cache.get_or_build(cache_key(sys, other),
                             [&] { return mor::lowrank_pmor(sys, other).model; });
    EXPECT_EQ(cache.stats().builds, 2);
}

TEST(ModelCache, DiskTierEvictionAndReloadBitIdentity) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = small_reduction();
    const CacheKey key = cache_key(sys, ropts);

    ModelCacheOptions copts;
    copts.disk_dir = fresh_disk_dir("varmor_cache_evict");
    ModelCache cache(copts);

    const mor::ReducedModel reference = mor::lowrank_pmor(sys, ropts).model;
    const ModelCache::ModelPtr built = cache.get_or_build(
        key, [&] { return mor::lowrank_pmor(sys, ropts).model; });
    expect_bit_identical(*built, reference);

    // The write-through copy landed on disk under the key's hex stem, with
    // the key recorded in its metadata.
    mor::ModelMeta meta;
    const mor::ReducedModel on_disk = mor::read_model_file(cache.disk_path(key), &meta);
    EXPECT_EQ(meta.cache_key, key.hex());
    expect_bit_identical(on_disk, reference);

    // Evict the memory tier; the next request must come back from disk —
    // bit-identical, with zero reduction work.
    cache.evict_memory();
    EXPECT_EQ(cache.memory_size(), 0);
    const ModelCache::ModelPtr reloaded = cache.get_or_build(
        key, [&]() -> mor::ReducedModel {
            ADD_FAILURE() << "builder must not run on a disk hit";
            return mor::lowrank_pmor(sys, ropts).model;
        });
    expect_bit_identical(*reloaded, reference);
    EXPECT_EQ(cache.stats().builds, 1);
    EXPECT_EQ(cache.stats().disk_hits, 1);
}

TEST(ModelCache, LruEvictsLeastRecentlyUsed) {
    const circuit::ParametricSystem sys = test_system();
    ModelCacheOptions copts;
    copts.memory_capacity = 2;
    copts.memory_shards = 1;  // one shard = the single global LRU order pinned here
    ModelCache cache(copts);

    mor::LowRankPmorOptions o1 = small_reduction();
    mor::LowRankPmorOptions o2 = small_reduction();
    o2.s_order = 4;
    mor::LowRankPmorOptions o3 = small_reduction();
    o3.s_order = 2;
    const CacheKey k1 = cache_key(sys, o1), k2 = cache_key(sys, o2),
                   k3 = cache_key(sys, o3);

    auto build = [&](const mor::LowRankPmorOptions& o) {
        return [&sys, o] { return mor::lowrank_pmor(sys, o).model; };
    };
    (void)cache.get_or_build(k1, build(o1));
    (void)cache.get_or_build(k2, build(o2));
    (void)cache.get_or_build(k1, build(o1));  // bump k1 to most-recent
    (void)cache.get_or_build(k3, build(o3));  // evicts k2 (the LRU entry)

    EXPECT_EQ(cache.memory_size(), 2);
    EXPECT_EQ(cache.stats().evictions, 1);
    EXPECT_EQ(cache.stats().builds, 3);

    // k1 survived the eviction (it was bumped); k2 did not (memory-only
    // cache, so it re-builds).
    (void)cache.get_or_build(k1, build(o1));
    EXPECT_EQ(cache.stats().builds, 3);
    (void)cache.get_or_build(k2, build(o2));
    EXPECT_EQ(cache.stats().builds, 4);
}

/// `count` distinct reduction-option variants whose cache keys all land on
/// `target_shard` — built by scanning cheap key-affecting perturbations
/// (drop_tol changes the key but not the build cost) until enough map there.
std::vector<mor::LowRankPmorOptions> same_shard_options(
    const ModelCache& cache, const circuit::ParametricSystem& sys,
    int target_shard, std::size_t count) {
    std::vector<mor::LowRankPmorOptions> out;
    for (int i = 0; out.size() < count && i < 100000; ++i) {
        mor::LowRankPmorOptions o = small_reduction();
        o.orth.drop_tol = 1e-12 * (1.0 + i);
        if (cache.shard_of(cache_key(sys, o)) == target_shard) out.push_back(o);
    }
    EXPECT_EQ(out.size(), count) << "could not find enough same-shard keys";
    return out;
}

TEST(ModelCache, ShardedEvictionIsPerShardNotGlobal) {
    const circuit::ParametricSystem sys = test_system();
    ModelCacheOptions copts;
    copts.memory_capacity = 4;
    copts.memory_shards = 2;  // per-shard capacity = 2
    ModelCache cache(copts);

    // Three keys on shard 0, one on shard 1. Four models total fit a GLOBAL
    // capacity of 4, so any eviction below proves the bound is per shard.
    const auto s0 = same_shard_options(cache, sys, 0, 3);
    const auto s1 = same_shard_options(cache, sys, 1, 1);
    auto build = [&](const mor::LowRankPmorOptions& o) {
        return [&sys, o] { return mor::lowrank_pmor(sys, o).model; };
    };
    const CacheKey k1 = cache_key(sys, s1[0]);
    std::vector<CacheKey> k0;
    for (const auto& o : s0) k0.push_back(cache_key(sys, o));

    (void)cache.get_or_build(k1, build(s1[0]));  // globally least-recent below
    for (std::size_t i = 0; i < s0.size(); ++i)
        (void)cache.get_or_build(k0[i], build(s0[i]));

    // Shard 0 overflowed its slice (3 inserts, capacity 2): its own LRU entry
    // k0[0] was dropped. Shard 1's entry survives even though it is the
    // globally least-recently-used key.
    EXPECT_EQ(cache.memory_size(), 3);
    EXPECT_EQ(cache.stats().evictions, 1);
    (void)cache.get_or_build(k1, [&]() -> mor::ReducedModel {
        ADD_FAILURE() << "other shard's entry must not be evicted";
        return mor::lowrank_pmor(sys, s1[0]).model;
    });
    (void)cache.get_or_build(k0[2], [&]() -> mor::ReducedModel {
        ADD_FAILURE() << "most-recent entry of the overflowed shard must survive";
        return mor::lowrank_pmor(sys, s0[2]).model;
    });
    EXPECT_EQ(cache.stats().builds, 4);
    (void)cache.get_or_build(k0[0], build(s0[0]));  // the per-shard victim
    EXPECT_EQ(cache.stats().builds, 5);
}

TEST(ModelCache, AggregateCountersAreTheSumOfShardCounters) {
    const circuit::ParametricSystem sys = test_system();
    ModelCacheOptions copts;
    copts.memory_shards = 4;
    ModelCache cache(copts);
    ASSERT_EQ(cache.num_shards(), 4);

    mor::LowRankPmorOptions o1 = small_reduction();
    mor::LowRankPmorOptions o2 = small_reduction();
    o2.s_order = 4;
    const CacheKey k1 = cache_key(sys, o1), k2 = cache_key(sys, o2);
    (void)cache.get_or_build(k1, [&] { return mor::lowrank_pmor(sys, o1).model; });
    (void)cache.get_or_build(k2, [&] { return mor::lowrank_pmor(sys, o2).model; });
    (void)cache.get_or_build(k1, [&] { return mor::lowrank_pmor(sys, o1).model; });
    (void)cache.get_or_build(k1, [&] { return mor::lowrank_pmor(sys, o1).model; });

    // Counters live in the key's shard and nowhere else; stats() is the sum.
    const std::vector<ModelCacheStats> per_shard = cache.shard_stats();
    ASSERT_EQ(per_shard.size(), 4u);
    ModelCacheStats sum;
    for (const ModelCacheStats& s : per_shard) {
        sum.memory_hits += s.memory_hits;
        sum.disk_hits += s.disk_hits;
        sum.builds += s.builds;
        sum.evictions += s.evictions;
        sum.poisonings += s.poisonings;
        sum.poison_hits += s.poison_hits;
    }
    const ModelCacheStats agg = cache.stats();
    EXPECT_EQ(agg.memory_hits, sum.memory_hits);
    EXPECT_EQ(agg.builds, sum.builds);
    EXPECT_EQ(agg.memory_hits, 2);
    EXPECT_EQ(agg.builds, 2);
    EXPECT_EQ(per_shard[static_cast<std::size_t>(cache.shard_of(k1))].memory_hits, 2);
    EXPECT_GE(per_shard[static_cast<std::size_t>(cache.shard_of(k1))].builds, 1);
}

TEST(ModelCache, ShardedConcurrentHitMissStormMatchesUnshardedBitwise) {
    const circuit::ParametricSystem sys = test_system();

    // Four distinct keys and their unsharded (memory_shards = 1) reference
    // bits — the behavior the sharded tier must reproduce exactly.
    std::vector<mor::LowRankPmorOptions> opts_of;
    for (int v = 0; v < 4; ++v) {
        mor::LowRankPmorOptions o = small_reduction();
        o.s_order = 2 + v;
        opts_of.push_back(o);
    }
    ModelCacheOptions ref_opts;
    ref_opts.memory_shards = 1;
    ModelCache reference(ref_opts);
    std::vector<ModelCache::ModelPtr> ref_models;
    for (const auto& o : opts_of)
        ref_models.push_back(reference.get_or_build(
            cache_key(sys, o), [&] { return mor::lowrank_pmor(sys, o).model; }));

    ModelCacheOptions copts;
    copts.memory_shards = 8;
    ModelCache cache(copts);

    // The storm: 8 clients hammer all four keys while the main thread evicts
    // the whole memory tier underneath them — every answer must still be the
    // reference bits (misses rebuild deterministically, hits serve the same).
    const int kClients = 8;
    const int kRounds = 24;
    std::vector<std::vector<ModelCache::ModelPtr>> got(kClients);
    std::vector<std::thread> clients;
    for (int t = 0; t < kClients; ++t)
        clients.emplace_back([&, t] {
            for (int r = 0; r < kRounds; ++r) {
                const std::size_t v = static_cast<std::size_t>((t + r) % 4);
                got[static_cast<std::size_t>(t)].push_back(cache.get_or_build(
                    cache_key(sys, opts_of[v]),
                    [&, v] { return mor::lowrank_pmor(sys, opts_of[v]).model; }));
            }
        });
    for (int e = 0; e < 4; ++e) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        cache.evict_memory();
    }
    for (std::thread& c : clients) c.join();

    for (int t = 0; t < kClients; ++t)
        for (int r = 0; r < kRounds; ++r) {
            const auto& m = got[static_cast<std::size_t>(t)][static_cast<std::size_t>(r)];
            ASSERT_TRUE(m != nullptr);
            expect_bit_identical(*m, *ref_models[static_cast<std::size_t>((t + r) % 4)]);
        }
    // Counted paths never exceed the request count (coalesced single-flight
    // waiters ride a winner's build and count neither a hit nor a build), and
    // every key was built at least once.
    const ModelCacheStats agg = cache.stats();
    EXPECT_LE(agg.memory_hits + agg.builds, kClients * kRounds);
    EXPECT_GE(agg.builds, 4);
}

TEST(ModelCache, CorruptDiskFileIsRebuiltNotServed) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = small_reduction();
    const CacheKey key = cache_key(sys, ropts);

    ModelCacheOptions copts;
    copts.disk_dir = fresh_disk_dir("varmor_cache_corrupt");
    ModelCache cache(copts);
    (void)cache.get_or_build(key, [&] { return mor::lowrank_pmor(sys, ropts).model; });
    EXPECT_EQ(cache.stats().builds, 1);

    // Corrupt one payload digit: the file still parses, but its recorded
    // content hash no longer matches — the integrity gate must reject it.
    {
        std::ifstream in(cache.disk_path(key));
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        const std::size_t pos = text.find("G0\n");
        ASSERT_NE(pos, std::string::npos);
        text[pos + 3] = text[pos + 3] == '1' ? '2' : '1';
        std::ofstream out(cache.disk_path(key));
        out << text;
    }
    cache.evict_memory();
    (void)cache.get_or_build(key, [&] { return mor::lowrank_pmor(sys, ropts).model; });
    EXPECT_EQ(cache.stats().builds, 2);
    EXPECT_EQ(cache.stats().disk_hits, 0);
}

TEST(ModelCache, ConcurrentMissesCoalesceOntoOneBuild) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = small_reduction();
    const CacheKey key = cache_key(sys, ropts);

    ModelCache cache;
    std::atomic<int> built{0};
    std::vector<ModelCache::ModelPtr> results(6);
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < results.size(); ++t)
        clients.emplace_back([&, t] {
            results[t] = cache.get_or_build(key, [&] {
                ++built;
                return mor::lowrank_pmor(sys, ropts).model;
            });
        });
    for (std::thread& c : clients) c.join();

    EXPECT_EQ(built.load(), 1);
    EXPECT_EQ(cache.stats().builds, 1);
    for (const auto& r : results) {
        ASSERT_TRUE(r != nullptr);
        EXPECT_EQ(r.get(), results[0].get());
    }
}

/// In-flight writes are `<name>.tmp.<pid>.<seq>`; after any completed
/// operation none may remain (a leftover is a crashed-writer simulation, not
/// a normal outcome).
int count_tmp_files(const std::string& dir) {
    int n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir))
        if (entry.path().filename().string().find(".tmp.") != std::string::npos)
            ++n;
    return n;
}

/// The `.rom` stems actually present — what the manifest must agree with.
std::vector<std::string> rom_stems(const std::string& dir) {
    std::vector<std::string> stems;
    for (const auto& entry : std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == ".rom")
            stems.push_back(entry.path().stem().string());
    std::sort(stems.begin(), stems.end());
    return stems;
}

/// The corruption matrix: every way a shared disk can hand back a damaged
/// artifact must end in detect → rebuild → repersist, with no orphan temp
/// files — never in serving bad bits and never in a crash.
void expect_corruption_repaired(const std::string& dir_name,
                                const std::function<void(const std::string&)>& damage) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = small_reduction();
    const CacheKey key = cache_key(sys, ropts);
    const mor::ReducedModel reference = mor::lowrank_pmor(sys, ropts).model;

    ModelCacheOptions copts;
    copts.disk_dir = fresh_disk_dir(dir_name);
    copts.retry.backoff_ms = 0.1;
    ModelCache cache(copts);
    (void)cache.get_or_build(key, [&] { return mor::lowrank_pmor(sys, ropts).model; });
    ASSERT_EQ(cache.stats().builds, 1);

    damage(cache.disk_path(key));
    cache.evict_memory();

    // The damaged artifact is a miss: detected, rebuilt, NOT served.
    const ModelCache::ModelPtr repaired = cache.get_or_build(
        key, [&] { return mor::lowrank_pmor(sys, ropts).model; });
    expect_bit_identical(*repaired, reference);
    EXPECT_EQ(cache.stats().builds, 2);
    EXPECT_EQ(cache.stats().disk_hits, 0);
    EXPECT_GE(cache.disk_stats().load_failures, 1);

    // The rebuild REPERSISTED a good artifact: the next cold probe is a
    // verified disk hit again, and no in-flight temp files were left behind.
    cache.evict_memory();
    (void)cache.get_or_build(key, [&]() -> mor::ReducedModel {
        ADD_FAILURE() << "builder must not run after the repair persisted";
        return mor::lowrank_pmor(sys, ropts).model;
    });
    EXPECT_EQ(cache.stats().builds, 2);
    EXPECT_EQ(cache.stats().disk_hits, 1);
    EXPECT_EQ(count_tmp_files(copts.disk_dir), 0);
}

TEST(ModelCache, TruncatedDiskFileIsRebuiltAndRepersisted) {
    expect_corruption_repaired("varmor_cache_truncated", [](const std::string& path) {
        std::ifstream in(path);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        std::ofstream out(path, std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    });
}

TEST(ModelCache, BadMagicDiskFileIsRebuiltAndRepersisted) {
    expect_corruption_repaired("varmor_cache_badmagic", [](const std::string& path) {
        std::ofstream out(path, std::ios::trunc);
        out << "not a varmor model\n";
    });
}

TEST(ModelCache, FlippedPayloadBitIsRebuiltAndRepersisted) {
    expect_corruption_repaired("varmor_cache_bitflip", [](const std::string& path) {
        std::ifstream in(path);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        const std::size_t pos = text.find("G0\n");
        ASSERT_NE(pos, std::string::npos);
        text[pos + 3] = text[pos + 3] == '1' ? '2' : '1';
        std::ofstream out(path, std::ios::trunc);
        out << text;
    });
}

TEST(ModelCache, StaleTmpFromCrashedWriterIsSweptAtStartup) {
    const std::string dir = fresh_disk_dir("varmor_cache_staletmp");
    std::filesystem::create_directories(dir);
    // A crashed writer's leftovers: a writer-unique temp name that will
    // never be renamed into place.
    {
        std::ofstream orphan(dir + "/deadbeefdeadbeef.rom.tmp.99999.0");
        orphan << "half-written artifact";
    }

    ModelCacheOptions copts;
    copts.disk_dir = dir;
    copts.tmp_ttl_seconds = 0.0;  // everything qualifies as stale
    ModelCache cache(copts);      // construction runs the recovery sweep

    EXPECT_EQ(count_tmp_files(dir), 0);
    EXPECT_GE(cache.disk_stats().tmp_removed, 1);

    // The sweep touched only temp files; a real artifact written afterwards
    // is untouched by subsequent sweeps even at TTL zero.
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = small_reduction();
    const CacheKey key = cache_key(sys, ropts);
    (void)cache.get_or_build(key, [&] { return mor::lowrank_pmor(sys, ropts).model; });
    cache.disk_store()->sweep();
    EXPECT_TRUE(std::filesystem::exists(cache.disk_path(key)));
}

TEST(ModelCache, ManifestTracksTheDirectory) {
    const circuit::ParametricSystem sys = test_system();
    ModelCacheOptions copts;
    copts.disk_dir = fresh_disk_dir("varmor_cache_manifest");
    ModelCache cache(copts);

    const mor::LowRankPmorOptions o1 = small_reduction();
    mor::LowRankPmorOptions o2 = small_reduction();
    o2.s_order = 4;
    (void)cache.get_or_build(cache_key(sys, o1),
                             [&] { return mor::lowrank_pmor(sys, o1).model; });
    (void)cache.get_or_build(cache_key(sys, o2),
                             [&] { return mor::lowrank_pmor(sys, o2).model; });

    // The manifest is the directory's index: key-sorted, one line per
    // artifact, refreshed after every store.
    EXPECT_EQ(cache.disk_store()->manifest_keys(), rom_stems(copts.disk_dir));
    EXPECT_EQ(cache.disk_store()->manifest_keys().size(), 2u);
}

TEST(ModelCache, DiskGcEvictsOldestAndUpdatesManifest) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions o1 = small_reduction();
    mor::LowRankPmorOptions o2 = small_reduction();
    o2.s_order = 4;

    // Measure one artifact to size the capacity bound: k1 fits alone, k1+k2
    // does not.
    const std::string probe_dir = fresh_disk_dir("varmor_cache_gc_probe");
    std::uintmax_t artifact_bytes = 0;
    {
        ModelCacheOptions copts;
        copts.disk_dir = probe_dir;
        ModelCache probe(copts);
        (void)probe.get_or_build(cache_key(sys, o1),
                                 [&] { return mor::lowrank_pmor(sys, o1).model; });
        artifact_bytes = std::filesystem::file_size(probe.disk_path(cache_key(sys, o1)));
    }

    ModelCacheOptions copts;
    copts.disk_dir = fresh_disk_dir("varmor_cache_gc");
    copts.disk_capacity_bytes = artifact_bytes + 16;
    ModelCache cache(copts);
    const CacheKey k1 = cache_key(sys, o1), k2 = cache_key(sys, o2);

    (void)cache.get_or_build(k1, [&] { return mor::lowrank_pmor(sys, o1).model; });
    EXPECT_TRUE(std::filesystem::exists(cache.disk_path(k1)));  // fits alone

    // k2 pushes the store over capacity: the GC removes the OLDEST artifact
    // (k1) and never the one just written.
    (void)cache.get_or_build(k2, [&] { return mor::lowrank_pmor(sys, o2).model; });
    EXPECT_FALSE(std::filesystem::exists(cache.disk_path(k1)));
    EXPECT_TRUE(std::filesystem::exists(cache.disk_path(k2)));
    EXPECT_EQ(cache.disk_stats().gc_removed, 1);
    EXPECT_EQ(cache.disk_store()->manifest_keys(),
              std::vector<std::string>{k2.hex()});

    // A GC-evicted key is a clean miss: it rebuilds (memory still holds it
    // here, so evict that tier first to prove the disk path).
    cache.evict_memory();
    (void)cache.get_or_build(k1, [&] { return mor::lowrank_pmor(sys, o1).model; });
    EXPECT_EQ(cache.stats().builds, 3);
}

TEST(ModelCache, SecondInstanceServesFromSharedDiskWithoutBuilding) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = small_reduction();
    const CacheKey key = cache_key(sys, ropts);
    const std::string dir = fresh_disk_dir("varmor_cache_shared_seq");

    ModelCacheOptions copts;
    copts.disk_dir = dir;
    ModelCache first(copts);
    const ModelCache::ModelPtr built = first.get_or_build(
        key, [&] { return mor::lowrank_pmor(sys, ropts).model; });

    // A second instance on the same directory — another process in spirit —
    // must serve the key from the shared store with zero reduction work.
    ModelCache second(copts);
    const ModelCache::ModelPtr reloaded = second.get_or_build(
        key, [&]() -> mor::ReducedModel {
            ADD_FAILURE() << "second instance must reload, not rebuild";
            return mor::lowrank_pmor(sys, ropts).model;
        });
    expect_bit_identical(*built, *reloaded);
    EXPECT_EQ(second.stats().builds, 0);
    EXPECT_EQ(second.stats().disk_hits, 1);
}

TEST(ModelCache, TwoInstancesOneDiskConcurrentBuildsUnderFaultsStayCoherent) {
    using util::FaultInjector;
    using util::ScopedFault;

    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions o1 = small_reduction();
    mor::LowRankPmorOptions o2 = small_reduction();
    o2.s_order = 4;
    const CacheKey k1 = cache_key(sys, o1), k2 = cache_key(sys, o2);
    const mor::ReducedModel ref1 = mor::lowrank_pmor(sys, o1).model;
    const mor::ReducedModel ref2 = mor::lowrank_pmor(sys, o2).model;

    FaultInjector::instance().clear();
    ModelCacheOptions copts;
    copts.disk_dir = fresh_disk_dir("varmor_cache_shared_conc");
    copts.retry.backoff_ms = 0.1;
    ModelCache a(copts), b(copts);

    // A transient disk-write fault in the middle of the stampede: the retry
    // policy must absorb it without breaking any of the guarantees below.
    ScopedFault flaky("model_cache.disk_write",
                      FaultInjector::fail_first(1, "EIO once"));

    std::atomic<int> built1{0}, built2{0};
    auto build1 = [&] { ++built1; return mor::lowrank_pmor(sys, o1).model; };
    auto build2 = [&] { ++built2; return mor::lowrank_pmor(sys, o2).model; };

    std::vector<ModelCache::ModelPtr> out(8);
    std::vector<std::thread> clients;
    for (int t = 0; t < 8; ++t)
        clients.emplace_back([&, t] {
            ModelCache& cache = (t % 2 == 0) ? a : b;
            out[static_cast<std::size_t>(t)] =
                (t < 4) ? cache.get_or_build(k1, build1)
                        : cache.get_or_build(k2, build2);
        });
    for (std::thread& c : clients) c.join();

    // No double builds: in-process single-flight dedups within an instance,
    // the per-key file lock + re-probe dedups ACROSS instances — exactly one
    // reduction per key, total, no matter who won.
    EXPECT_EQ(built1.load(), 1);
    EXPECT_EQ(built2.load(), 1);
    EXPECT_EQ(a.stats().builds + b.stats().builds, 2);

    // No corruption: every client of either instance got the reference bits.
    for (int t = 0; t < 8; ++t) {
        ASSERT_TRUE(out[static_cast<std::size_t>(t)] != nullptr);
        expect_bit_identical(*out[static_cast<std::size_t>(t)],
                             t < 4 ? ref1 : ref2);
    }

    // No manifest divergence: both instances' view of the shared index
    // equals the directory itself, and no in-flight temp files survive.
    const std::vector<std::string> on_disk = rom_stems(copts.disk_dir);
    EXPECT_EQ(on_disk.size(), 2u);
    EXPECT_EQ(a.disk_store()->manifest_keys(), on_disk);
    EXPECT_EQ(b.disk_store()->manifest_keys(), on_disk);
    EXPECT_EQ(count_tmp_files(copts.disk_dir), 0);
    FaultInjector::instance().clear();
}

TEST(ModelCache, LookupProbesWithoutBuilding) {
    const circuit::ParametricSystem sys = test_system();
    const mor::LowRankPmorOptions ropts = small_reduction();
    const CacheKey key = cache_key(sys, ropts);

    ModelCache cache;
    EXPECT_EQ(cache.lookup(key), nullptr);
    (void)cache.get_or_build(key, [&] { return mor::lowrank_pmor(sys, ropts).model; });
    EXPECT_NE(cache.lookup(key), nullptr);
    EXPECT_TRUE(cache.disk_path(key).empty());  // memory-only configuration
}

}  // namespace
}  // namespace varmor::service
