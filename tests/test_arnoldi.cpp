#include <algorithm>
#include <gtest/gtest.h>

#include "la/eig.h"
#include "sparse/arnoldi.h"
#include "sparse/splu.h"
#include "test_helpers.h"

namespace varmor::sparse {
namespace {

using la::cplx;
using la::Matrix;
using la::Vector;
using varmor::testing::random_matrix;

TEST(Arnoldi, FindsDominantEigenvalueOfDiagonal) {
    const int n = 50;
    Matrix a(n, n);
    for (int i = 0; i < n; ++i) a(i, i) = 1.0 + i;  // dominant = 50
    ArnoldiOptions opts;
    opts.subspace = 30;
    ArnoldiResult r = arnoldi_eigenvalues(dense_operator(a), opts);
    ASSERT_FALSE(r.ritz_values.empty());
    EXPECT_NEAR(std::abs(r.ritz_values[0]), 50.0, 1e-6);
}

TEST(Arnoldi, ExactWhenSubspaceEqualsDimension) {
    util::Rng rng(1);
    const int n = 12;
    Matrix a = random_matrix(n, n, rng);
    ArnoldiOptions opts;
    opts.subspace = n;
    ArnoldiResult r = arnoldi_eigenvalues(dense_operator(a), opts);
    auto exact = la::eig_values(a);
    std::sort(exact.begin(), exact.end(),
              [](cplx x, cplx y) { return std::abs(x) > std::abs(y); });
    ASSERT_EQ(r.ritz_values.size(), exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i)
        EXPECT_LE(std::abs(r.ritz_values[i] - exact[i]), 1e-7 * (1 + std::abs(exact[i])))
            << "eigenvalue " << i;
}

TEST(Arnoldi, TopEigenvaluesOfSymmetricLadder) {
    // -G^-1 C operator for an RC ladder: eigenvalues are real negative-ish
    // magnitudes; Arnoldi's top Ritz values must match dense computation.
    const int n = 80;
    Triplets tg(n, n), tc(n, n);
    for (int i = 0; i < n; ++i) {
        tg.add(i, i, 2.0);
        if (i > 0) {
            tg.add(i, i - 1, -1.0);
            tg.add(i - 1, i, -1.0);
        }
        tc.add(i, i, 1.0 + 0.01 * i);
    }
    Csc g(tg), c(tc);
    SparseLu lu(g);
    LinearOperator op(
        n, n, [&](const Vector& x) { return lu.solve(c.apply(x)); },
        [&](const Vector& x) { return c.apply_transpose(lu.solve_transpose(x)); });

    ArnoldiOptions opts;
    opts.subspace = 50;
    ArnoldiResult r = arnoldi_eigenvalues(op, opts);

    Matrix dense_op = lu.solve(c.to_dense());
    auto exact = la::eig_values(dense_op);
    std::sort(exact.begin(), exact.end(),
              [](cplx x, cplx y) { return std::abs(x) > std::abs(y); });
    for (int i = 0; i < 5; ++i)
        EXPECT_LE(std::abs(r.ritz_values[static_cast<std::size_t>(i)] -
                           exact[static_cast<std::size_t>(i)]),
                  1e-6 * std::abs(exact[0]))
            << "Ritz value " << i;
}

TEST(Arnoldi, BreakdownOnLowRankOperatorIsExact) {
    // Rank-2 matrix: Krylov space exhausts after <= 3 steps; Ritz values are
    // then exact eigenvalues {nonzero pair, zeros}.
    util::Rng rng(2);
    const int n = 20;
    Vector u1(n), v1(n), u2(n), v2(n);
    for (int i = 0; i < n; ++i) {
        u1[i] = rng.uniform(-1, 1);
        v1[i] = rng.uniform(-1, 1);
        u2[i] = rng.uniform(-1, 1);
        v2[i] = rng.uniform(-1, 1);
    }
    Matrix a(n, n);
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i) a(i, j) = u1[i] * v1[j] + 0.1 * u2[i] * v2[j];
    ArnoldiOptions opts;
    opts.subspace = 15;
    ArnoldiResult r = arnoldi_eigenvalues(dense_operator(a), opts);
    auto exact = la::eig_values(a);
    std::sort(exact.begin(), exact.end(),
              [](cplx x, cplx y) { return std::abs(x) > std::abs(y); });
    EXPECT_LE(std::abs(r.ritz_values[0] - exact[0]), 1e-8 * (1 + std::abs(exact[0])));
}

TEST(Arnoldi, NonSquareThrows) {
    util::Rng rng(3);
    EXPECT_THROW(arnoldi_eigenvalues(dense_operator(random_matrix(3, 4, rng))), Error);
}

class ArnoldiSubspaceProperty : public ::testing::TestWithParam<int> {};

TEST_P(ArnoldiSubspaceProperty, DominantRitzValueConvergesMonotonically) {
    util::Rng rng(4);
    const int n = 60;
    Matrix a = random_matrix(n, n, rng);
    for (int i = 0; i < n; ++i) a(i, i) += 2.0 * i / n;  // spread spectrum
    auto exact = la::eig_values(a);
    double dominant = 0;
    for (const cplx& z : exact) dominant = std::max(dominant, std::abs(z));

    ArnoldiOptions opts;
    opts.subspace = GetParam();
    ArnoldiResult r = arnoldi_eigenvalues(dense_operator(a), opts);
    // With a healthy subspace the dominant Ritz value approximates |lambda_max|.
    if (opts.subspace >= 40)
        EXPECT_NEAR(std::abs(r.ritz_values[0]), dominant, 0.05 * dominant);
    else
        // Nonsymmetric Ritz values live in the field of values, which can
        // slightly exceed the spectral radius for small subspaces.
        EXPECT_LE(std::abs(r.ritz_values[0]), dominant * 1.2);
}

INSTANTIATE_TEST_SUITE_P(Subspaces, ArnoldiSubspaceProperty, ::testing::Values(10, 20, 40, 60));

}  // namespace
}  // namespace varmor::sparse
