#include <gtest/gtest.h>

#include "la/orth.h"
#include "mor/single_point.h"
#include "mor_test_utils.h"

namespace varmor::mor {
namespace {

using varmor::testing::max_moment_mismatch;
using varmor::testing::oracle_of;
using varmor::testing::small_parametric_rc;

/// Section 3.1's defining property: the single-point basis matches EVERY
/// multi-parameter moment (cross terms included) up to the total order.
class SinglePointMomentProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};  // (order, np)

TEST_P(SinglePointMomentProperty, MatchesAllMultiParameterMoments) {
    auto [order, np] = GetParam();
    circuit::ParametricSystem sys = small_parametric_rc(20, np, 11);
    SinglePointOptions opts;
    opts.order = order;
    SinglePointResult r = single_point_basis(sys, opts);
    ReducedModel red = project(sys, r.basis);

    MomentOracle full = oracle_of(sys);
    MomentOracle reduced = oracle_of(red);
    EXPECT_LE(max_moment_mismatch(full, reduced, order, np), 1e-7)
        << "order " << order << ", " << np << " parameters";
}

INSTANTIATE_TEST_SUITE_P(OrdersAndParams, SinglePointMomentProperty,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 1},
                                           std::pair{3, 1}, std::pair{2, 2},
                                           std::pair{3, 2}, std::pair{2, 3}));

TEST(SinglePoint, BasisOrthonormal) {
    circuit::ParametricSystem sys = small_parametric_rc(15, 2, 12);
    SinglePointOptions opts;
    opts.order = 3;
    SinglePointResult r = single_point_basis(sys, opts);
    EXPECT_LE(la::orthonormality_error(r.basis), 1e-10);
}

TEST(SinglePoint, WordCountGrowsCombinatorially) {
    // Section 3.2: model size driven by cross terms. Word counts must grow
    // rapidly with the order — the motivation for Algorithm 1.
    circuit::ParametricSystem sys = small_parametric_rc(15, 2, 13);
    std::vector<int> words;
    for (int order : {1, 2, 3, 4}) {
        SinglePointOptions opts;
        opts.order = order;
        words.push_back(single_point_basis(sys, opts).words_generated);
    }
    EXPECT_GT(words[1], 2 * words[0]);
    EXPECT_GT(words[2], 2 * words[1]);
    EXPECT_GT(words[3], 2 * words[2]);
}

TEST(SinglePoint, OrderZeroSpansR0Only) {
    circuit::ParametricSystem sys = small_parametric_rc(15, 2, 14);
    SinglePointOptions opts;
    opts.order = 0;
    SinglePointResult r = single_point_basis(sys, opts);
    EXPECT_EQ(r.basis.cols(), sys.num_ports());
}

TEST(SinglePoint, WordBudgetEnforced) {
    circuit::ParametricSystem sys = small_parametric_rc(15, 3, 15);
    SinglePointOptions opts;
    opts.order = 6;
    opts.max_words = 50;
    EXPECT_THROW(single_point_basis(sys, opts), Error);
}

TEST(SinglePoint, CrossTermMomentReallyNeedsCrossSubspace) {
    // A PRIMA-only basis of the same size does NOT match the cross moment
    // s^1 p^1 — demonstrating that single-point matching is doing real work.
    circuit::ParametricSystem sys = small_parametric_rc(20, 1, 16);
    SinglePointOptions opts;
    opts.order = 2;
    SinglePointResult sp = single_point_basis(sys, opts);

    MomentOracle full = oracle_of(sys);
    MomentOracle reduced_sp = oracle_of(project(sys, sp.basis));
    MomentKey cross;
    cross.s = 1;
    cross.p = {1};
    const double scale = la::norm_max(full.port_moment(cross)) + 1e-300;
    EXPECT_LE(la::norm_max(full.port_moment(cross) - reduced_sp.port_moment(cross)) / scale,
              1e-8);
}

}  // namespace
}  // namespace varmor::mor
