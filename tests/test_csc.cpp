#include <gtest/gtest.h>

#include "sparse/csc.h"
#include "test_helpers.h"

namespace varmor::sparse {
namespace {

using la::Matrix;
using la::Vector;
using varmor::testing::expect_near;
using varmor::testing::random_matrix;

Csc random_sparse(int n, double density, util::Rng& rng) {
    Triplets t(n, n);
    for (int j = 0; j < n; ++j) {
        t.add(j, j, rng.uniform(1.0, 2.0) + n);  // strong diagonal
        for (int i = 0; i < n; ++i)
            if (i != j && rng.chance(density)) t.add(i, j, rng.uniform(-1.0, 1.0));
    }
    return Csc(t);
}

TEST(Triplets, DuplicatesAccumulate) {
    Triplets t(2, 2);
    t.add(0, 0, 1.5);
    t.add(0, 0, 2.5);
    t.add(1, 0, -1.0);
    Csc a(t);
    EXPECT_EQ(a.nnz(), 2);
    Matrix d = a.to_dense();
    EXPECT_DOUBLE_EQ(d(0, 0), 4.0);
    EXPECT_DOUBLE_EQ(d(1, 0), -1.0);
}

TEST(Triplets, OutOfRangeThrows) {
    Triplets t(2, 2);
    EXPECT_THROW(t.add(2, 0, 1.0), Error);
    EXPECT_THROW(t.add(0, -1, 1.0), Error);
}

TEST(Triplets, CancellationDropsEntry) {
    Triplets t(2, 2);
    t.add(0, 1, 3.0);
    t.add(0, 1, -3.0);
    t.add(1, 1, 1.0);
    Csc a(t);
    EXPECT_EQ(a.nnz(), 1);
}

TEST(Csc, RowIndicesSortedWithinColumns) {
    util::Rng rng(1);
    Csc a = random_sparse(20, 0.3, rng);
    for (int j = 0; j < a.cols(); ++j)
        for (int p = a.col_ptr()[static_cast<std::size_t>(j)] + 1;
             p < a.col_ptr()[static_cast<std::size_t>(j) + 1]; ++p)
            EXPECT_LT(a.row_idx()[static_cast<std::size_t>(p) - 1],
                      a.row_idx()[static_cast<std::size_t>(p)]);
}

TEST(Csc, ApplyMatchesDense) {
    util::Rng rng(2);
    Csc a = random_sparse(15, 0.25, rng);
    Matrix d = a.to_dense();
    Vector x(15);
    for (int i = 0; i < 15; ++i) x[i] = rng.uniform(-1, 1);
    EXPECT_LE(la::norm2(a.apply(x) - la::matvec(d, x)), 1e-12);
    EXPECT_LE(la::norm2(a.apply_transpose(x) - la::matvec_transpose(d, x)), 1e-12);
}

TEST(Csc, TransposeMatchesDense) {
    util::Rng rng(3);
    Csc a = random_sparse(12, 0.3, rng);
    expect_near(transpose(a).to_dense(), la::transpose(a.to_dense()), 0.0);
}

TEST(Csc, AddWithDifferentPatterns) {
    Triplets ta(2, 2), tb(2, 2);
    ta.add(0, 0, 1.0);
    tb.add(1, 1, 2.0);
    tb.add(0, 0, 3.0);
    Csc c = add(2.0, Csc(ta), -1.0, Csc(tb));
    Matrix d = c.to_dense();
    EXPECT_DOUBLE_EQ(d(0, 0), -1.0);
    EXPECT_DOUBLE_EQ(d(1, 1), -2.0);
}

TEST(Csc, PencilMatchesDensePencil) {
    util::Rng rng(4);
    Csc g = random_sparse(8, 0.3, rng);
    Csc c = random_sparse(8, 0.3, rng);
    const la::cplx s(0.0, 2.0e9);
    ZCsc z = pencil(g, c, s);
    la::ZMatrix expected = la::pencil(g.to_dense(), c.to_dense(), s);
    la::ZMatrix got = z.to_dense();
    EXPECT_LE(la::norm_max(got - expected), 1e-6 * la::norm_max(expected));
}

TEST(Csc, FromDenseRoundTrip) {
    util::Rng rng(5);
    Matrix d = random_matrix(7, 9, rng);
    expect_near(from_dense(d).to_dense(), d, 0.0);
}

TEST(Csc, ApplyToMatrix) {
    util::Rng rng(6);
    Csc a = random_sparse(10, 0.3, rng);
    Matrix x = random_matrix(10, 3, rng);
    expect_near(a.apply(x), la::matmul(a.to_dense(), x), 1e-11);
    expect_near(a.apply_transpose(x), la::matmul_transA(a.to_dense(), x), 1e-11);
}

TEST(Csc, DimensionMismatchThrows) {
    util::Rng rng(7);
    Csc a = random_sparse(5, 0.3, rng);
    EXPECT_THROW(a.apply(Vector(4)), Error);
    EXPECT_THROW(a.apply_transpose(Vector(6)), Error);
}

}  // namespace
}  // namespace varmor::sparse
