// Determinism and correctness of the parallel evaluation drivers: the
// batched sweep and Monte-Carlo studies must produce bit-identical results
// at any thread count, and agree with the pre-batching per-point
// re-factorization path to solver precision.

#include <gtest/gtest.h>

#include "analysis/freq_sweep.h"
#include "analysis/monte_carlo.h"
#include "circuit/generators.h"
#include "circuit/mna.h"
#include "la/ops.h"
#include "mor/lowrank_pmor.h"
#include "mor_test_utils.h"
#include "sparse/splu.h"
#include "util/constants.h"

namespace varmor::analysis {
namespace {

using la::ZMatrix;

void expect_bit_identical(const std::vector<ZMatrix>& a, const std::vector<ZMatrix>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].rows(), b[i].rows());
        ASSERT_EQ(a[i].cols(), b[i].cols());
        for (std::size_t k = 0; k < a[i].raw().size(); ++k) {
            EXPECT_EQ(a[i].raw()[k].real(), b[i].raw()[k].real()) << "point " << i;
            EXPECT_EQ(a[i].raw()[k].imag(), b[i].raw()[k].imag()) << "point " << i;
        }
    }
}

TEST(ParallelSweep, BitIdenticalAcrossThreadCounts) {
    const circuit::ParametricSystem sys = varmor::testing::small_parametric_rc(30, 2, 41);
    const std::vector<double> p{0.2, -0.15};
    const auto freqs = log_frequencies(1e-3, 10.0, 33);

    SweepOptions serial;
    serial.threads = 1;
    const auto ref = sweep_full(sys, p, freqs, serial);
    for (int threads : {2, 3, 5}) {
        SweepOptions opts;
        opts.threads = threads;
        expect_bit_identical(ref, sweep_full(sys, p, freqs, opts));
    }
}

TEST(ParallelSweep, MatchesPerPointRefactorizationPath) {
    // The legacy path: assemble the pencil and run a fresh symbolic + numeric
    // factorization at every point.
    const circuit::ParametricSystem sys = varmor::testing::small_parametric_rc(25, 2, 42);
    const std::vector<double> p{-0.1, 0.25};
    const auto freqs = log_frequencies(1e-3, 1.0, 11);

    const sparse::Csc g = sys.g_at(p);
    const sparse::Csc c = sys.c_at(p);
    const la::ZMatrix bz = la::to_complex(sys.b);
    const la::ZMatrix lzt = la::transpose(la::to_complex(sys.l));

    const auto fast = sweep_full(sys, p, freqs);
    ASSERT_EQ(fast.size(), freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        const la::cplx s(0.0, util::two_pi_f(freqs[i]));
        const sparse::ZSparseLu lu(sparse::pencil(g, c, s));
        const ZMatrix ref = la::matmul(lzt, lu.solve(bz));
        EXPECT_LE(la::norm_max(fast[i] - ref), 1e-10 * (1 + la::norm_max(ref)))
            << "f = " << freqs[i];
    }
}

TEST(ParallelSweep, SinglePointAndEmptySweep) {
    const circuit::ParametricSystem sys = varmor::testing::small_parametric_rc(10, 1, 43);
    EXPECT_TRUE(sweep_full(sys, {0.0}, {}).empty());
    const auto one = sweep_full(sys, {0.0}, {0.5});
    ASSERT_EQ(one.size(), 1u);
}

TEST(ParallelPoleStudy, BitIdenticalAcrossThreadCounts) {
    const circuit::ParametricSystem sys =
        assemble_mna(circuit::clock_tree(circuit::rcnet_a_options()));
    mor::LowRankPmorOptions mopts;
    mopts.s_order = 4;
    mopts.param_order = 2;
    mopts.rank = 2;
    const mor::LowRankPmorResult model = mor::lowrank_pmor(sys, mopts);

    MonteCarloOptions mc;
    mc.samples = 8;
    const auto samples = sample_parameters(3, mc);
    PoleOptions popts;
    popts.count = 4;

    const PoleErrorStudy serial = pole_error_study(sys, model.model, samples, popts, 1);
    for (int threads : {2, 4}) {
        const PoleErrorStudy parallel = pole_error_study(sys, model.model, samples, popts, threads);
        ASSERT_EQ(serial.flattened.size(), parallel.flattened.size());
        for (std::size_t i = 0; i < serial.flattened.size(); ++i)
            EXPECT_EQ(serial.flattened[i], parallel.flattened[i]) << "error " << i;
        EXPECT_EQ(serial.max_error, parallel.max_error);
        EXPECT_EQ(serial.mean_error, parallel.mean_error);
    }
}

TEST(LowRankPmor, SharedFactorizationReproducesResult) {
    const circuit::ParametricSystem sys = varmor::testing::small_parametric_rc(24, 2, 44);
    mor::LowRankPmorOptions opts;
    opts.s_order = 3;
    opts.param_order = 2;

    const mor::LowRankPmorResult plain = mor::lowrank_pmor(sys, opts);

    mor::LowRankPmorOptions shared = opts;
    shared.g0_factor = std::make_shared<const sparse::SparseLu>(sys.g0);
    const mor::LowRankPmorResult reused = mor::lowrank_pmor(sys, shared);

    ASSERT_EQ(plain.basis.cols(), reused.basis.cols());
    EXPECT_LE(la::norm_max(plain.basis - reused.basis), 1e-13);
    EXPECT_EQ(plain.sparse_solves, reused.sparse_solves);

    // Re-running on the same shared factor keeps the per-run solve count
    // (the counter is cumulative on the factor, not on the run).
    const mor::LowRankPmorResult again = mor::lowrank_pmor(sys, shared);
    EXPECT_EQ(again.sparse_solves, reused.sparse_solves);
}

}  // namespace
}  // namespace varmor::analysis
