// service::QueryBatcher — coalescing must be invisible in the results: a
// batch assembled from whatever traffic happened to interleave is BIT-
// IDENTICAL to serving every query alone, at any execution thread count.
// Also pinned: the size and deadline halves of the flush policy, flush()
// draining, and per-query error isolation.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>  // std::future_status — the ticket's wait_for vocabulary
#include <thread>
#include <vector>

#include "analysis/transient_batch.h"
#include "mor/lowrank_pmor.h"
#include "mor/rom_eval.h"
#include "mor_test_utils.h"
#include "service/query_batcher.h"
#include "util/constants.h"

namespace varmor::service {
namespace {

using la::cplx;
using la::ZMatrix;
using varmor::testing::small_parametric_rc;

struct Fixture {
    circuit::ParametricSystem sys;
    mor::ReducedModel model;
    mor::RomEvalEngine engine;
    analysis::TransientBatchRunner runner;
    analysis::InputFn input;
    double level;

    static analysis::TransientOptions transient_opts() {
        analysis::TransientOptions t;
        t.t_stop = 10.0;
        t.dt = 0.5;
        return t;
    }

    Fixture()
        : sys(small_parametric_rc(40, 2, 123)),
          model([this] {
              mor::LowRankPmorOptions o;
              o.s_order = 3;
              o.param_order = 2;
              return mor::lowrank_pmor(sys, o).model;
          }()),
          engine(model),
          runner(sys, transient_opts()),
          input(analysis::step_input(sys.num_ports(), 0, 1.0)) {
        // Fixed absolute threshold (half the nominal settled response of the
        // last port) — what a serving session derives once and reuses.
        const std::vector<double> p0(2, 0.0);
        const analysis::TransientResult nominal = runner.run(p0, input);
        level = 0.5 * nominal.ports.back().back();
    }

    int observe() const { return sys.num_ports() - 1; }

    // The "serve each query alone" references the batcher must match bitwise.
    ZMatrix transfer_alone(const std::vector<double>& p, cplx s) const {
        mor::RomEvalWorkspace ws;
        engine.stamp_parameters(p, ws);
        return engine.transfer(s, ws);
    }
    DelayResult delay_alone(const std::vector<double>& p) const {
        const analysis::TransientResult wave = runner.run(p, input);
        return DelayResult{analysis::crossing_time(wave, observe(), level), level};
    }
    std::vector<cplx> poles_alone(const std::vector<double>& p) const {
        mor::RomEvalWorkspace ws;
        engine.stamp_parameters(p, ws);
        return engine.poles(ws);
    }
};

void expect_bit_identical(const ZMatrix& a, const ZMatrix& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t k = 0; k < a.raw().size(); ++k) {
        EXPECT_EQ(a.raw()[k].real(), b.raw()[k].real());
        EXPECT_EQ(a.raw()[k].imag(), b.raw()[k].imag());
    }
}

/// Deterministic per-client query arguments (client index seeds the values).
std::vector<double> corner_of(int client, int j) {
    return {0.05 * client - 0.2, 0.03 * j - 0.1};
}

TEST(QueryBatcher, ThreadedCoalescingBitIdenticalToServingAlone) {
    Fixture fx;
    const int kClients = 8;
    const int kTransfersPer = 6;
    const int kDelaysPer = 2;
    const int kPolesPer = 2;
    const auto s_of = [](int j) { return cplx(0.0, util::two_pi_f(0.01 + 0.05 * j)); };

    // Both execution modes: serial and the process-wide pool — the contract
    // is "bit-identical at any thread count".
    for (int exec_threads : {1, 0}) {
        QueryBatcherOptions opts;
        opts.max_batch = 16;
        opts.max_wait_ms = 20.0;
        opts.threads = exec_threads;
        QueryBatcher batcher(fx.engine, &fx.runner, fx.input, fx.level, fx.observe(),
                             opts);

        std::vector<std::vector<Future<ZMatrix>>> tf(kClients);
        std::vector<std::vector<Future<DelayResult>>> df(kClients);
        std::vector<std::vector<Future<std::vector<cplx>>>> pf(kClients);
        std::vector<std::thread> clients;
        for (int c = 0; c < kClients; ++c)
            clients.emplace_back([&, c] {
                // Interleave classes so batches mix heterogeneous queries;
                // transfer corners repeat across clients (c % 2) so grouping
                // has real coalescing opportunities.
                for (int j = 0; j < kTransfersPer; ++j) {
                    tf[c].push_back(batcher.submit_transfer(corner_of(c % 2, j), s_of(j)));
                    if (j < kDelaysPer) df[c].push_back(batcher.submit_delay(corner_of(c, j)));
                    if (j < kPolesPer) pf[c].push_back(batcher.submit_poles(corner_of(j, c)));
                }
            });
        for (std::thread& t : clients) t.join();

        for (int c = 0; c < kClients; ++c) {
            for (int j = 0; j < kTransfersPer; ++j)
                expect_bit_identical(tf[c][static_cast<std::size_t>(j)].get(),
                                     fx.transfer_alone(corner_of(c % 2, j), s_of(j)));
            for (int j = 0; j < kDelaysPer; ++j) {
                const DelayResult got = df[c][static_cast<std::size_t>(j)].get();
                const DelayResult ref = fx.delay_alone(corner_of(c, j));
                EXPECT_EQ(got.delay.has_value(), ref.delay.has_value());
                if (got.delay) EXPECT_EQ(*got.delay, *ref.delay);
                EXPECT_EQ(got.level, ref.level);
            }
            for (int j = 0; j < kPolesPer; ++j) {
                const auto got = pf[c][static_cast<std::size_t>(j)].get();
                const auto ref = fx.poles_alone(corner_of(j, c));
                ASSERT_EQ(got.size(), ref.size());
                for (std::size_t k = 0; k < got.size(); ++k) {
                    EXPECT_EQ(got[k].real(), ref[k].real());
                    EXPECT_EQ(got[k].imag(), ref[k].imag());
                }
            }
        }

        const QueryBatcherStats stats = batcher.stats();
        EXPECT_EQ(stats.queries,
                  kClients * (kTransfersPer + kDelaysPer + kPolesPer));
        EXPECT_GE(stats.batches, 1);
        // Clients share corner_of(c, j) points across transfer queries, so
        // grouping must have coalesced at least some stamps.
        EXPECT_EQ(stats.transfer_queries, kClients * kTransfersPer);
        EXPECT_LE(stats.transfer_groups, stats.transfer_queries);
    }
}

TEST(QueryBatcher, DeadlineFlushesAnUndersizedBatch) {
    Fixture fx;
    QueryBatcherOptions opts;
    opts.max_batch = 1000;  // size trigger unreachable
    opts.max_wait_ms = 5.0;
    opts.threads = 1;
    QueryBatcher batcher(fx.engine, nullptr, {}, 0.0, 0, opts);

    // A single query must be answered after ~max_wait_ms, not held hostage
    // for a full batch.
    auto f = batcher.submit_transfer({0.1, -0.1}, cplx(0.0, 1.0));
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    expect_bit_identical(f.get(), fx.transfer_alone({0.1, -0.1}, cplx(0.0, 1.0)));
    EXPECT_GE(batcher.stats().batches, 1);
}

TEST(QueryBatcher, SizeTriggerFlushesWithoutWaitingForDeadline) {
    Fixture fx;
    QueryBatcherOptions opts;
    opts.max_batch = 4;
    opts.max_wait_ms = 60000.0;  // deadline effectively unreachable
    opts.threads = 1;
    QueryBatcher batcher(fx.engine, nullptr, {}, 0.0, 0, opts);

    std::vector<Future<ZMatrix>> fs;
    for (int j = 0; j < 4; ++j)
        fs.push_back(batcher.submit_transfer({0.02 * j, 0.0}, cplx(0.0, 1.0 + j)));
    // If only the (1-minute) deadline could flush, this would time out.
    for (auto& f : fs)
        ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    EXPECT_GE(batcher.stats().largest_batch, 4);
}

TEST(QueryBatcher, FlushDrainsEverythingSubmittedBefore) {
    Fixture fx;
    QueryBatcherOptions opts;
    opts.max_batch = 1000;
    opts.max_wait_ms = 60000.0;
    opts.threads = 1;
    QueryBatcher batcher(fx.engine, &fx.runner, fx.input, fx.level, fx.observe(),
                         opts);

    auto t = batcher.submit_transfer({0.1, 0.1}, cplx(0.0, 2.0));
    auto d = batcher.submit_delay({0.1, 0.1});
    batcher.flush();
    EXPECT_EQ(t.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(d.wait_for(std::chrono::seconds(0)), std::future_status::ready);

    // flush() on an idle batcher returns promptly.
    batcher.flush();
}

TEST(QueryBatcher, PerQueryErrorsDoNotPoisonTheBatch) {
    Fixture fx;
    QueryBatcherOptions opts;
    opts.max_batch = 16;
    opts.max_wait_ms = 20.0;
    opts.threads = 1;
    QueryBatcher batcher(fx.engine, &fx.runner, fx.input, fx.level, fx.observe(),
                         opts);

    // Transfer lane: a wrong-arity query fails alone.
    auto good = batcher.submit_transfer({0.1, -0.1}, cplx(0.0, 1.0));
    auto bad = batcher.submit_transfer({0.1}, cplx(0.0, 1.0));  // wrong arity
    // Delay lane: a bad corner coalesced with a good one fails alone too
    // (the batch falls back to per-corner serving on failure).
    auto good_delay = batcher.submit_delay({0.1, -0.1});
    auto bad_delay = batcher.submit_delay({0.1, 0.2, 0.3});  // wrong arity
    // Pole lane likewise.
    auto good_poles = batcher.submit_poles({0.1, -0.1});
    auto bad_poles = batcher.submit_poles({});  // wrong arity
    batcher.flush();

    EXPECT_THROW(bad.get(), Error);
    expect_bit_identical(good.get(), fx.transfer_alone({0.1, -0.1}, cplx(0.0, 1.0)));
    EXPECT_THROW(bad_delay.get(), Error);
    const DelayResult got = good_delay.get();
    const DelayResult ref = fx.delay_alone({0.1, -0.1});
    EXPECT_EQ(got.delay.has_value(), ref.delay.has_value());
    if (got.delay) EXPECT_EQ(*got.delay, *ref.delay);
    EXPECT_THROW(bad_poles.get(), Error);
    EXPECT_EQ(good_poles.get().size(), fx.poles_alone({0.1, -0.1}).size());
}

TEST(QueryBatcher, DelayWithoutRunnerIsRejected) {
    Fixture fx;
    QueryBatcher batcher(fx.engine, nullptr, {}, 0.0, 0, {});
    EXPECT_THROW(batcher.submit_delay({0.0, 0.0}), Error);
}

}  // namespace
}  // namespace varmor::service
