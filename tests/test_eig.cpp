#include <algorithm>
#include <gtest/gtest.h>

#include "la/eig.h"
#include "la/lu_dense.h"
#include "test_helpers.h"

namespace varmor::la {
namespace {

using testing::random_matrix;

std::vector<cplx> sorted_by_real_then_imag(std::vector<cplx> v) {
    std::sort(v.begin(), v.end(), [](cplx a, cplx b) {
        if (a.real() != b.real()) return a.real() < b.real();
        return a.imag() < b.imag();
    });
    return v;
}

TEST(Hessenberg, UpperHessenbergStructure) {
    util::Rng rng(1);
    Matrix a = random_matrix(8, 8, rng);
    Matrix h = hessenberg(a);
    for (int j = 0; j < 8; ++j)
        for (int i = j + 2; i < 8; ++i) EXPECT_EQ(h(i, j), 0.0);
}

TEST(Hessenberg, PreservesTrace) {
    util::Rng rng(2);
    Matrix a = random_matrix(10, 10, rng);
    Matrix h = hessenberg(a);
    double ta = 0, th = 0;
    for (int i = 0; i < 10; ++i) {
        ta += a(i, i);
        th += h(i, i);
    }
    EXPECT_NEAR(ta, th, 1e-10);
}

TEST(Eig, DiagonalMatrix) {
    Matrix a{{1.0, 0.0, 0.0}, {0.0, 2.0, 0.0}, {0.0, 0.0, 3.0}};
    auto w = sorted_by_real_then_imag(eig_values(a));
    EXPECT_NEAR(w[0].real(), 1.0, 1e-12);
    EXPECT_NEAR(w[1].real(), 2.0, 1e-12);
    EXPECT_NEAR(w[2].real(), 3.0, 1e-12);
    for (const cplx& z : w) EXPECT_NEAR(z.imag(), 0.0, 1e-12);
}

TEST(Eig, RotationHasComplexPair) {
    // 90-degree rotation: eigenvalues +-i.
    Matrix a{{0.0, -1.0}, {1.0, 0.0}};
    auto w = eig_values(a);
    ASSERT_EQ(w.size(), 2u);
    EXPECT_NEAR(std::abs(w[0] - cplx(0, 1)) * std::abs(w[0] - cplx(0, -1)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(w[0] + w[1]), 0.0, 1e-12);           // sum = trace = 0
    EXPECT_NEAR(std::abs(w[0] * w[1] - cplx(1)), 0.0, 1e-12); // product = det = 1
}

TEST(Eig, CompanionMatrixOfKnownPolynomial) {
    // p(x) = (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6.
    Matrix a{{6.0, -11.0, 6.0}, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
    auto w = sorted_by_real_then_imag(eig_values(a));
    EXPECT_NEAR(w[0].real(), 1.0, 1e-9);
    EXPECT_NEAR(w[1].real(), 2.0, 1e-9);
    EXPECT_NEAR(w[2].real(), 3.0, 1e-9);
}

TEST(Eig, SingleElement) {
    Matrix a{{42.0}};
    auto w = eig_values(a);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], cplx(42.0));
}

TEST(Eig, UpperTriangularEigenvaluesAreDiagonal) {
    Matrix a{{1.0, 5.0, -2.0}, {0.0, 4.0, 3.0}, {0.0, 0.0, -2.0}};
    auto w = sorted_by_real_then_imag(eig_values(a));
    EXPECT_NEAR(w[0].real(), -2.0, 1e-10);
    EXPECT_NEAR(w[1].real(), 1.0, 1e-10);
    EXPECT_NEAR(w[2].real(), 4.0, 1e-10);
}

/// Residual check: each eigenvalue must make A - lambda I numerically
/// singular, verified through the smallest singular value via a complex solve
/// with a perturbed shift (inverse iteration amplification).
void expect_eigenvalues_valid(const Matrix& a, const std::vector<cplx>& w) {
    const int n = a.rows();
    // Invariants: sum(w) = trace(A), prod(w) = det(A).
    cplx sum{};
    for (const cplx& z : w) sum += z;
    double trace = 0;
    for (int i = 0; i < n; ++i) trace += a(i, i);
    EXPECT_NEAR(sum.real(), trace, 1e-8 * (1 + std::abs(trace)));
    EXPECT_NEAR(sum.imag(), 0.0, 1e-8 * (1 + std::abs(trace)));

    cplx logprod{};
    for (const cplx& z : w) logprod += std::log(z + cplx(1e-300));
    const double det = DenseLu<double>(a).determinant();
    if (std::abs(det) > 1e-12) {
        EXPECT_NEAR(logprod.real(), std::log(std::abs(det)), 1e-6 * (1 + std::abs(std::log(std::abs(det)))));
    }
}

class EigProperty : public ::testing::TestWithParam<int> {};

TEST_P(EigProperty, TraceAndDeterminantInvariants) {
    const int n = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(n) * 17 + 5);
    Matrix a = random_matrix(n, n, rng);
    auto w = eig_values(a);
    ASSERT_EQ(static_cast<int>(w.size()), n);
    expect_eigenvalues_valid(a, w);
}

TEST_P(EigProperty, ComplexEigenvaluesComeInConjugatePairs) {
    const int n = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(n) * 23 + 7);
    Matrix a = random_matrix(n, n, rng);
    auto w = eig_values(a);
    std::vector<bool> used(w.size(), false);
    for (std::size_t i = 0; i < w.size(); ++i) {
        if (used[i] || std::abs(w[i].imag()) < 1e-10) continue;
        bool found = false;
        for (std::size_t j = 0; j < w.size(); ++j) {
            if (j == i || used[j]) continue;
            if (std::abs(w[j] - std::conj(w[i])) < 1e-7 * (1 + std::abs(w[i]))) {
                used[i] = used[j] = true;
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found) << "unpaired complex eigenvalue " << w[i].real() << "+"
                           << w[i].imag() << "i at size " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigProperty, ::testing::Values(2, 3, 4, 5, 8, 12, 20, 30));

TEST(Eig, KnownSpectrumViaSimilarity) {
    // Build A = S D S^-1 with known D; eigenvalues must match D.
    util::Rng rng(99);
    const int n = 6;
    Matrix d(n, n);
    const double eigs[6] = {-5.0, -2.0, -1.0, 0.5, 1.0, 4.0};
    for (int i = 0; i < n; ++i) d(i, i) = eigs[i];
    Matrix s = testing::random_dd_matrix(n, rng);
    Matrix a = matmul(s, matmul(d, inverse(s)));
    auto w = sorted_by_real_then_imag(eig_values(a));
    for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(w[static_cast<std::size_t>(i)].real(), eigs[i], 1e-7);
        EXPECT_NEAR(w[static_cast<std::size_t>(i)].imag(), 0.0, 1e-7);
    }
}

TEST(Eig, NonSquareThrows) {
    EXPECT_THROW(eig_values(Matrix(2, 3)), Error);
}

TEST(Eig, ZeroMatrix) {
    auto w = eig_values(Matrix(4, 4));
    for (const cplx& z : w) EXPECT_EQ(z, cplx(0));
}

}  // namespace
}  // namespace varmor::la
