#include <gtest/gtest.h>

#include <tuple>

#include "la/dense.h"
#include "la/ops.h"
#include "test_helpers.h"

namespace varmor::la {
namespace {

using testing::expect_near;
using testing::random_matrix;
using testing::random_zmatrix;

TEST(Dense, ConstructionAndAccess) {
    Matrix a(2, 3);
    EXPECT_EQ(a.rows(), 2);
    EXPECT_EQ(a.cols(), 3);
    EXPECT_EQ(a(1, 2), 0.0);
    a(1, 2) = 5.0;
    EXPECT_EQ(a(1, 2), 5.0);
}

TEST(Dense, InitializerList) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(a(0, 0), 1.0);
    EXPECT_EQ(a(0, 1), 2.0);
    EXPECT_EQ(a(1, 0), 3.0);
    EXPECT_EQ(a(1, 1), 4.0);
}

TEST(Dense, RaggedInitializerThrows) {
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), Error);
}

TEST(Dense, NegativeDimensionThrows) {
    EXPECT_THROW(Matrix(-1, 2), Error);
    EXPECT_THROW(Vector(-3), Error);
}

TEST(Dense, Identity) {
    Matrix i3 = Matrix::identity(3);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j) EXPECT_EQ(i3(i, j), i == j ? 1.0 : 0.0);
}

TEST(Dense, ColumnMajorLayout) {
    Matrix a{{1.0, 3.0}, {2.0, 4.0}};
    // Column 0 = (1, 2), contiguous.
    EXPECT_EQ(a.col_data(0)[0], 1.0);
    EXPECT_EQ(a.col_data(0)[1], 2.0);
    EXPECT_EQ(a.col_data(1)[0], 3.0);
    EXPECT_EQ(a.col_data(1)[1], 4.0);
}

TEST(Dense, ColRoundTrip) {
    util::Rng rng(11);
    Matrix a = random_matrix(5, 4, rng);
    Vector c = a.col(2);
    Matrix b = a;
    b.set_col(2, c);
    expect_near(a, b, 0.0);
}

TEST(Dense, ColsRange) {
    util::Rng rng(12);
    Matrix a = random_matrix(4, 6, rng);
    Matrix mid = a.cols_range(2, 3);
    ASSERT_EQ(mid.cols(), 3);
    for (int j = 0; j < 3; ++j)
        for (int i = 0; i < 4; ++i) EXPECT_EQ(mid(i, j), a(i, j + 2));
    EXPECT_THROW(a.cols_range(4, 3), Error);
}

TEST(Ops, DotAndNorm) {
    Vector x{3.0, 4.0};
    EXPECT_DOUBLE_EQ(norm2(x), 5.0);
    Vector y{1.0, 2.0};
    EXPECT_DOUBLE_EQ(dot(x, y), 11.0);
}

TEST(Ops, ComplexDotConjugatesLeft) {
    ZVector x{cplx(0, 1)};
    ZVector y{cplx(0, 1)};
    // x^H y = conj(i) * i = 1.
    EXPECT_EQ(dot(x, y), cplx(1, 0));
}

TEST(Ops, MatVec) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Vector x{1.0, 1.0};
    Vector y = matvec(a, x);
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
    Vector yt = matvec_transpose(a, x);
    EXPECT_DOUBLE_EQ(yt[0], 4.0);
    EXPECT_DOUBLE_EQ(yt[1], 6.0);
}

TEST(Ops, MatMulAgainstHandComputed) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    Matrix c = matmul(a, b);
    Matrix expected{{19.0, 22.0}, {43.0, 50.0}};
    expect_near(c, expected, 1e-15);
}

TEST(Ops, MatMulTransAEqualsExplicitTranspose) {
    util::Rng rng(5);
    Matrix a = random_matrix(6, 3, rng);
    Matrix b = random_matrix(6, 4, rng);
    expect_near(matmul_transA(a, b), matmul(transpose(a), b), 1e-13);
}

/// The blocked kernels must agree with the unblocked reference loops on
/// every remainder path: sizes straddling the 4-wide j/i blocks and the
/// 2-wide k block, including degenerate 1-row/1-column shapes.
class BlockedMatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlockedMatmulShapes, MatchesNaiveReference) {
    const auto [m, k, n] = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(m * 1000 + k * 100 + n));
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    const double scale = 1.0 + norm_max(matmul_naive(a, b));
    expect_near(matmul(a, b), matmul_naive(a, b), 1e-13 * scale, "matmul");

    const Matrix at = random_matrix(k, m, rng);  // shared rows with bt below
    const Matrix bt = random_matrix(k, n, rng);
    const double tscale = 1.0 + norm_max(matmul_transA_naive(at, bt));
    expect_near(matmul_transA(at, bt), matmul_transA_naive(at, bt), 1e-13 * tscale,
                "matmul_transA");
}

INSTANTIATE_TEST_SUITE_P(
    RectangularAndOdd, BlockedMatmulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(4, 4, 4), std::make_tuple(5, 4, 3),
                      std::make_tuple(8, 2, 9), std::make_tuple(13, 17, 11),
                      std::make_tuple(1, 12, 4), std::make_tuple(12, 1, 5),
                      std::make_tuple(6, 9, 1), std::make_tuple(33, 47, 29)));

TEST(Ops, BlockedMatmulComplexMatchesNaive) {
    util::Rng rng(44);
    const ZMatrix a = random_zmatrix(9, 13, rng);
    const ZMatrix b = random_zmatrix(13, 6, rng);
    EXPECT_LE(norm_max(matmul(a, b) - matmul_naive(a, b)),
              1e-13 * (1.0 + norm_max(matmul_naive(a, b))));
    const ZMatrix at = random_zmatrix(13, 9, rng);
    EXPECT_LE(norm_max(matmul_transA(at, b) - matmul_transA_naive(at, b)),
              1e-13 * (1.0 + norm_max(matmul_transA_naive(at, b))));
}

TEST(Ops, MatmulIntoReusesStorageAndMatchesMatmul) {
    util::Rng rng(45);
    const Matrix a = random_matrix(7, 5, rng);
    const Matrix b = random_matrix(5, 6, rng);
    Matrix c(7, 6, 99.0);  // stale contents must be overwritten, not added to
    matmul_into(a, b, c);
    expect_near(c, matmul(a, b), 0.0);
    // Shape mismatch: resized, then exact again.
    Matrix d(2, 2);
    matmul_into(a, b, d);
    expect_near(d, matmul(a, b), 0.0);
}

TEST(Ops, TransposeInvolution) {
    util::Rng rng(6);
    Matrix a = random_matrix(5, 7, rng);
    expect_near(transpose(transpose(a)), a, 0.0);
}

TEST(Ops, HcatShapes) {
    util::Rng rng(7);
    Matrix a = random_matrix(3, 2, rng);
    Matrix b = random_matrix(3, 4, rng);
    Matrix c = hcat(a, b);
    ASSERT_EQ(c.cols(), 6);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(c(i, 0), a(i, 0));
        EXPECT_EQ(c(i, 2), b(i, 0));
    }
    Matrix empty(3, 0);
    expect_near(hcat(empty, a), a, 0.0);
    expect_near(hcat(a, empty), a, 0.0);
}

TEST(Ops, PencilCombinesGAndC) {
    Matrix g{{1.0, 0.0}, {0.0, 2.0}};
    Matrix c{{0.5, 0.0}, {0.0, 0.5}};
    ZMatrix z = pencil(g, c, cplx(0, 2.0));
    EXPECT_EQ(z(0, 0), cplx(1.0, 1.0));
    EXPECT_EQ(z(1, 1), cplx(2.0, 1.0));
}

TEST(Ops, SymmetricPart) {
    Matrix a{{1.0, 2.0}, {0.0, 3.0}};
    Matrix s = symmetric_part(a);
    EXPECT_DOUBLE_EQ(s(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(s(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(s(0, 0), 1.0);
}

TEST(Ops, NormFrobenius) {
    Matrix a{{3.0, 0.0}, {0.0, 4.0}};
    EXPECT_DOUBLE_EQ(norm_fro(a), 5.0);
}

TEST(Ops, DimensionMismatchThrows) {
    Matrix a(2, 3);
    Matrix b(4, 2);
    EXPECT_THROW(matmul(a, b), Error);
    Vector x(5);
    EXPECT_THROW(matvec(a, x), Error);
    EXPECT_THROW(a + b, Error);
}

// Property sweep: (AB)^T = B^T A^T over several shapes.
class MatMulProperty : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulProperty, TransposeOfProduct) {
    auto [m, k, n] = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(m * 100 + k * 10 + n));
    Matrix a = random_matrix(m, k, rng);
    Matrix b = random_matrix(k, n, rng);
    expect_near(transpose(matmul(a, b)), matmul(transpose(b), transpose(a)), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulProperty,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                                           std::tuple{5, 5, 5}, std::tuple{7, 2, 9},
                                           std::tuple{10, 1, 10}, std::tuple{16, 8, 4}));

}  // namespace
}  // namespace varmor::la
