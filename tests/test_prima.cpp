#include <gtest/gtest.h>

#include "la/cholesky.h"
#include "la/orth.h"
#include "mor/prima.h"
#include "mor/reduced_model.h"
#include "mor_test_utils.h"

namespace varmor::mor {
namespace {

using varmor::testing::max_moment_mismatch;
using varmor::testing::oracle_of;
using varmor::testing::small_parametric_rc;

TEST(Prima, BasisIsOrthonormal) {
    circuit::ParametricSystem sys = small_parametric_rc(30, 0, 1);
    la::Matrix v = prima_basis(sys.g0, sys.c0, sys.b, {});
    EXPECT_LE(la::orthonormality_error(v), 1e-10);
}

TEST(Prima, BasisSizeIsBlocksTimesPorts) {
    circuit::ParametricSystem sys = small_parametric_rc(40, 0, 2);
    PrimaOptions opts;
    opts.blocks = 5;
    la::Matrix v = prima_basis(sys.g0, sys.c0, sys.b, opts);
    EXPECT_EQ(v.cols(), 5 * sys.num_ports());  // no deflation expected here
}

/// The PRIMA theorem: the reduced model matches the first `blocks` block
/// moments of the transfer function, machine-verified via the moment oracle.
class PrimaMomentProperty : public ::testing::TestWithParam<int> {};

TEST_P(PrimaMomentProperty, MatchesBlockMoments) {
    const int blocks = GetParam();
    circuit::ParametricSystem sys = small_parametric_rc(25, 0, 3);
    PrimaOptions opts;
    opts.blocks = blocks;
    la::Matrix v = prima_basis(sys.g0, sys.c0, sys.b, opts);
    ReducedModel red = project(sys, v);

    MomentOracle full = oracle_of(sys);
    MomentOracle reduced = oracle_of(red);
    EXPECT_LE(max_moment_mismatch(full, reduced, blocks - 1, 0), 1e-7)
        << "PRIMA must match moments s^0 .. s^" << blocks - 1;
}

INSTANTIATE_TEST_SUITE_P(Blocks, PrimaMomentProperty, ::testing::Values(1, 2, 3, 5, 8));

TEST(Prima, HigherMomentNotMatched) {
    // Sanity check that the test harness can detect a mismatch: the moment
    // one order past the matched range must NOT agree (otherwise the
    // property tests above are vacuous).
    circuit::ParametricSystem sys = small_parametric_rc(25, 0, 4);
    PrimaOptions opts;
    opts.blocks = 2;
    ReducedModel red = project(sys, prima_basis(sys.g0, sys.c0, sys.b, opts));
    MomentOracle full = oracle_of(sys);
    MomentOracle reduced = oracle_of(red);
    MomentKey key;
    key.s = 4;
    const double scale = la::norm_max(full.port_moment(key));
    const double diff = la::norm_max(full.port_moment(key) - reduced.port_moment(key));
    EXPECT_GT(diff / scale, 1e-6);
}

TEST(Prima, ReducedModelPreservesPassivity) {
    circuit::ParametricSystem sys = small_parametric_rc(35, 0, 5);
    ReducedModel red = project(sys, prima_basis(sys.g0, sys.c0, sys.b, {}));
    // Congruence projection of a passive RC system: G~ SPD-part, C~ PSD.
    EXPECT_TRUE(la::is_positive_semidefinite(la::symmetric_part(red.g0)));
    EXPECT_TRUE(la::is_positive_semidefinite(la::symmetric_part(red.c0)));
}

TEST(Prima, PrimaBasisAtEvaluatesParametricSystem) {
    circuit::ParametricSystem sys = small_parametric_rc(20, 2, 6);
    PrimaOptions opts;
    opts.blocks = 3;
    // Basis at a perturbed point reduces the perturbed system exactly like
    // prima_basis on the assembled matrices.
    const std::vector<double> p{0.4, -0.2};
    la::Matrix v1 = prima_basis_at(sys, p, opts);
    la::Matrix v2 = prima_basis(sys.g_at(p), sys.c_at(p), sys.b, opts);
    // Same subspace: projector difference is tiny.
    la::Matrix p1 = la::matmul(v1, la::transpose(v1));
    la::Matrix p2 = la::matmul(v2, la::transpose(v2));
    EXPECT_LE(la::norm_max(p1 - p2), 1e-9);
}

TEST(Prima, InvalidInputsThrow) {
    circuit::ParametricSystem sys = small_parametric_rc(10, 0, 7);
    PrimaOptions bad;
    bad.blocks = 0;
    EXPECT_THROW(prima_basis(sys.g0, sys.c0, sys.b, bad), Error);
    EXPECT_THROW(prima_basis(sys.g0, sys.c0, la::Matrix(5, 1), {}), Error);
}

}  // namespace
}  // namespace varmor::mor
