// Batched transient engine: corner batches must be bit-identical to looped
// single-corner simulate() calls at any thread count (both route through the
// same trapezoidal code path and refactorize from the same nominal reference
// factorization), including corners that collapse the frozen pivot sequence
// and take the RefactorError fallback.

#include <cmath>
#include <gtest/gtest.h>

#include "analysis/monte_carlo.h"
#include "analysis/transient.h"
#include "analysis/transient_batch.h"
#include "circuit/mna.h"
#include "mor_test_utils.h"
#include "sparse/splu.h"

namespace varmor::analysis {
namespace {

void expect_bit_identical(const TransientResult& a, const TransientResult& b) {
    ASSERT_EQ(a.time.size(), b.time.size());
    for (std::size_t i = 0; i < a.time.size(); ++i) EXPECT_EQ(a.time[i], b.time[i]);
    ASSERT_EQ(a.ports.size(), b.ports.size());
    for (std::size_t k = 0; k < a.ports.size(); ++k) {
        ASSERT_EQ(a.ports[k].size(), b.ports[k].size());
        for (std::size_t i = 0; i < a.ports[k].size(); ++i)
            EXPECT_EQ(a.ports[k][i], b.ports[k][i]) << "port " << k << " step " << i;
    }
}

/// Deterministic RC line whose two parameters scale wire conductance and
/// capacitance (same construction as the transient delay test).
circuit::ParametricSystem rc_line(int n) {
    circuit::Netlist net(2);
    net.ensure_nodes(n);
    net.add_resistor(1, 0, 1.0);
    for (int k = 2; k <= n; ++k) {
        net.add_resistor(k - 1, k, 1.0, {0.4, 0.0});
        net.add_capacitor(k, 0, 1.0, {0.0, 0.4});
    }
    net.add_port(1);
    net.add_port(n);
    return assemble_mna(net);
}

TEST(TransientBatch, StudyWaveformsBitIdenticalToLoopedSimulate) {
    const circuit::ParametricSystem sys = rc_line(25);
    MonteCarloOptions mc;
    mc.samples = 9;
    mc.sigma = 0.25;
    const auto corners = sample_parameters(2, mc);

    TransientStudyOptions opts;
    opts.transient.t_stop = 800.0;
    opts.transient.dt = 2.0;
    const InputFn input = step_input(2, 0);

    for (int threads : {1, 8}) {
        opts.threads = threads;
        const TransientStudy study = transient_study(sys, corners, opts);
        ASSERT_EQ(study.waveforms.size(), corners.size());
        ASSERT_EQ(study.delays.size(), corners.size());
        for (std::size_t k = 0; k < corners.size(); ++k) {
            const TransientResult single = simulate(sys, corners[k], input, opts.transient);
            expect_bit_identical(study.waveforms[k], single);
        }
    }
}

TEST(TransientBatch, RunBatchBitIdenticalAcrossThreadCounts) {
    const circuit::ParametricSystem sys = varmor::testing::small_parametric_rc(30, 2, 97);
    MonteCarloOptions mc;
    mc.samples = 7;
    mc.sigma = 0.2;
    const auto corners = sample_parameters(2, mc);

    TransientOptions topts;
    topts.t_stop = 20.0;
    topts.dt = 0.1;
    const TransientBatchRunner runner(sys, topts);
    const InputFn input = step_input(runner.num_ports(), 0);

    const auto serial = runner.run_batch(corners, input, 1);
    ASSERT_EQ(serial.size(), corners.size());
    for (int threads : {2, 5, 8}) {
        const auto parallel = runner.run_batch(corners, input, threads);
        ASSERT_EQ(parallel.size(), corners.size());
        for (std::size_t k = 0; k < corners.size(); ++k)
            expect_bit_identical(serial[k], parallel[k]);
    }
}

/// Hand-built 2-state system engineered so the corner p = 1 drives the (0,0)
/// entry of the trapezoidal pencil M(p) = C(p)/h + G(p)/2 to exactly zero
/// while M stays nonsingular: the frozen nominal pivot collapses and the
/// engine must take the fresh-factorization fallback for that corner only.
circuit::ParametricSystem pivot_collapse_system() {
    circuit::ParametricSystem sys;
    sys.g0 = sparse::from_dense(la::Matrix{{0.0, 1.0}, {1.0, 0.0}});
    sys.c0 = sparse::from_dense(la::Matrix{{1.0, 0.0}, {0.0, 1.0}});
    sys.dg = {sparse::from_dense(la::Matrix(2, 2))};
    sys.dc = {sparse::from_dense(la::Matrix{{-1.0, 0.0}, {0.0, 0.0}})};
    // from_dense drops exact zeros; dg[0] must still be a valid 2x2 empty
    // matrix, which the Triplets-based constructor produces.
    sys.b = la::Matrix{{1.0}, {0.0}};
    sys.l = sys.b;
    return sys;
}

TEST(TransientBatch, RefactorFallbackCornerStaysBitIdentical) {
    const circuit::ParametricSystem sys = pivot_collapse_system();
    TransientOptions topts;
    topts.dt = 1.0;    // h = 1: M(p) = C(p) + G/2 = [[1-p, 0.5], [0.5, 1]]
    topts.t_stop = 3.0;

    // The collapsing corner really does collapse the frozen pivot: the
    // nominal reference factorization of M(0) refuses to refactorize M(1).
    {
        const sparse::Csc m0 = sparse::from_dense(la::Matrix{{1.0, 0.5}, {0.5, 1.0}});
        const sparse::Csc m1 = sparse::from_dense(la::Matrix{{0.0, 0.5}, {0.5, 1.0}});
        // Same pattern required by refactorize: keep the zero entry explicit.
        sparse::Csc m1_patterned = m0;
        m1_patterned.values() = {0.0, 0.5, 0.5, 1.0};
        sparse::SparseLu lu(m0);
        EXPECT_THROW(lu.refactorize(m1_patterned), sparse::RefactorError);
        // ... while a fresh factorization handles it (nonsingular matrix).
        EXPECT_NO_THROW(sparse::SparseLu{m1});
    }

    const std::vector<std::vector<double>> corners{{0.0}, {1.0}, {0.3}, {-0.5}};
    const TransientBatchRunner runner(sys, topts);
    const InputFn input = step_input(1, 0);

    const auto serial = runner.run_batch(corners, input, 1);
    for (std::size_t k = 0; k < corners.size(); ++k) {
        for (double v : serial[k].ports[0]) EXPECT_TRUE(std::isfinite(v));
        // Looped single-corner path takes the identical refactorize-or-
        // fallback decision, so waveforms match bitwise.
        expect_bit_identical(serial[k], simulate(sys, corners[k], input, topts));
    }
    for (int threads : {2, 4}) {
        const auto parallel = runner.run_batch(corners, input, threads);
        for (std::size_t k = 0; k < corners.size(); ++k)
            expect_bit_identical(serial[k], parallel[k]);
    }
}

TEST(TransientBatch, StudyMeasuresDelayShiftAndHistogram) {
    const circuit::ParametricSystem sys = rc_line(30);
    // Nominal plus slow (R up, C up) and fast (R down, C down) corners.
    const std::vector<std::vector<double>> corners{
        {0.0, 0.0}, {-0.9, 0.9}, {0.9, -0.9}, {0.4, 0.4}, {-0.4, -0.4}};

    TransientStudyOptions opts;
    opts.transient.t_stop = 2000.0;
    opts.transient.dt = 0.5;
    opts.histogram_bins = 4;
    const TransientStudy study = transient_study(sys, corners, opts);

    ASSERT_EQ(study.delays.size(), corners.size());
    EXPECT_EQ(study.num_crossed, static_cast<int>(corners.size()));
    for (const auto& d : study.delays) ASSERT_TRUE(d.has_value());
    // Conductance down + capacitance up slows the line; the opposite corner
    // speeds it up.
    EXPECT_GT(*study.delays[1], 1.3 * *study.delays[0]);
    EXPECT_LT(*study.delays[2], 0.8 * *study.delays[0]);
    // Statistics are over the crossed corners.
    int total = 0;
    for (int c : study.histogram.counts) total += c;
    EXPECT_EQ(total, study.num_crossed);
    EXPECT_GT(study.mean_delay, 0.0);
    EXPECT_GT(study.sigma_delay, 0.0);
    ASSERT_EQ(study.histogram.counts.size(), 4u);
}

TEST(TransientBatch, EmptyCornerListThrows) {
    const circuit::ParametricSystem sys = rc_line(5);
    EXPECT_THROW(transient_study(sys, {}, {}), Error);
}

TEST(TransientBatch, SingleSegmentScheduleMatchesFlatGrid) {
    const circuit::ParametricSystem sys = rc_line(20);
    const InputFn input = step_input(2, 0);
    const std::vector<std::vector<double>> corners{{0.1, -0.2}, {0.0, 0.0}};

    TransientOptions flat;
    flat.t_stop = 40.0;
    flat.dt = 0.5;
    TransientOptions scheduled;
    scheduled.schedule = {{40.0, 0.5}};

    const TransientBatchRunner flat_runner(sys, flat);
    const TransientBatchRunner sched_runner(sys, scheduled);
    EXPECT_EQ(flat_runner.num_pencils(), 1);
    EXPECT_EQ(sched_runner.num_pencils(), 1);
    const auto a = flat_runner.run_batch(corners, input, 1);
    const auto b = sched_runner.run_batch(corners, input, 1);
    for (std::size_t k = 0; k < corners.size(); ++k) expect_bit_identical(a[k], b[k]);
}

TEST(TransientBatch, VariableStepBatchBitIdenticalToLoopedSimulate) {
    const circuit::ParametricSystem sys = varmor::testing::small_parametric_rc(25, 2, 31);
    MonteCarloOptions mc;
    mc.samples = 5;
    mc.sigma = 0.2;
    auto corners = sample_parameters(2, mc);
    corners.push_back({0.0, 0.0});

    // Fine edge window, coarse tail, then a fine window again: three
    // segments but only TWO distinct dt values, hence two pencils (one
    // refactorization per distinct dt per corner, not per segment).
    TransientOptions topts;
    topts.schedule = {{5.0, 0.1}, {20.0, 1.0}, {5.0, 0.1}};
    const TransientBatchRunner runner(sys, topts);
    EXPECT_EQ(runner.num_pencils(), 2);
    const InputFn input = step_input(runner.num_ports(), 0);

    // Time grid: 50 + 20 + 50 steps covering [0, 30].
    const auto serial = runner.run_batch(corners, input, 1);
    ASSERT_EQ(serial.front().time.size(), 121u);
    EXPECT_DOUBLE_EQ(serial.front().time.back(), 30.0);

    // Batch == loop of single-corner runs == parallel batch, bitwise.
    for (std::size_t k = 0; k < corners.size(); ++k)
        expect_bit_identical(serial[k], simulate(sys, corners[k], input, topts));
    for (int threads : {2, 4, 8}) {
        const auto parallel = runner.run_batch(corners, input, threads);
        for (std::size_t k = 0; k < corners.size(); ++k)
            expect_bit_identical(serial[k], parallel[k]);
    }
}

TEST(TransientBatch, VariableStepMatchesPiecewiseFlatRuns) {
    // A two-segment schedule must produce exactly the union of two flat
    // runs: the first segment is a flat run, and the second continues from
    // its final state (checked against physical sanity: monotone step
    // response through the dt change, no restart transient).
    const circuit::ParametricSystem sys = rc_line(15);
    const InputFn input = step_input(2, 0);

    TransientOptions topts;
    topts.schedule = {{10.0, 0.25}, {40.0, 1.0}};
    const TransientResult r = simulate(sys, {0.0, 0.0}, input, topts);

    // Flat reference over the first segment only: identical prefix.
    TransientOptions head;
    head.t_stop = 10.0;
    head.dt = 0.25;
    const TransientResult prefix = simulate(sys, {0.0, 0.0}, input, head);
    ASSERT_GE(r.time.size(), prefix.time.size());
    for (std::size_t i = 0; i < prefix.time.size(); ++i) {
        EXPECT_EQ(r.time[i], prefix.time[i]);
        EXPECT_EQ(r.ports[1][i], prefix.ports[1][i]);
    }
    // The tail keeps charging monotonically toward the settled value (no
    // discontinuity introduced by the refactorization at the dt change).
    for (std::size_t i = prefix.time.size(); i < r.time.size(); ++i)
        EXPECT_GE(r.ports[1][i] + 1e-12, r.ports[1][i - 1]);
}

TEST(TransientBatch, ExactlyCancellingPencilEntryKeepsThePatternContract) {
    // dt chosen so the (0,1)/(1,0) entries of M = C/dt + G/2 cancel to
    // EXACTLY zero (c01/dt == -g01/2). A value-level sparse add would drop
    // them, making the trapezoid pattern dt-dependent and breaking the
    // context's shared-symbolic contract; the engine must keep them as
    // explicit zeros and run the study normally.
    circuit::ParametricSystem sys;
    sys.g0 = sparse::from_dense(la::Matrix{{2.0, -1.0}, {-1.0, 2.0}});
    sys.c0 = sparse::from_dense(la::Matrix{{1.0, 0.5}, {0.5, 1.0}});
    sys.dg = {sparse::from_dense(la::Matrix{{0.2, 0.0}, {0.0, 0.2}})};
    sys.dc = {sparse::from_dense(la::Matrix{{0.1, 0.0}, {0.0, 0.1}})};
    sys.b = la::Matrix{{1.0}, {0.0}};
    sys.l = sys.b;

    TransientOptions topts;
    topts.dt = 1.0;  // c01/dt + g01/2 = 0.5 - 0.5 = 0 exactly
    topts.t_stop = 4.0;
    const TransientBatchRunner runner(sys, topts);  // must not throw
    const InputFn input = step_input(1, 0);
    const std::vector<std::vector<double>> corners{{0.0}, {0.5}, {-0.5}};
    const auto batch = runner.run_batch(corners, input, 1);
    for (std::size_t k = 0; k < corners.size(); ++k) {
        for (double v : batch[k].ports[0]) EXPECT_TRUE(std::isfinite(v));
        expect_bit_identical(batch[k], simulate(sys, corners[k], input, topts));
    }
}

TEST(TransientBatch, InvalidScheduleThrows) {
    const circuit::ParametricSystem sys = rc_line(5);
    TransientOptions bad;
    bad.schedule = {{1.0, 0.1}, {0.05, 0.1}};  // second segment shorter than dt
    EXPECT_THROW(TransientBatchRunner(sys, bad), Error);
    bad.schedule = {{1.0, -0.1}};
    EXPECT_THROW(TransientBatchRunner(sys, bad), Error);
}

}  // namespace
}  // namespace varmor::analysis
