#!/usr/bin/env python3
"""varmor-lint: project-specific static checks the compilers cannot express.

Run as `python3 tools/varmor_lint.py [repo-root]` (default: cwd). Exit code 0
when clean, 1 with `path:line: [rule] message` findings otherwise. Wired into
ctest (label `static`) and the CI static-analysis job.

Rules
-----
fault-points     Every VARMOR_FAULT_POINT name in src/ is `component.event`
                 style, confined to ONE file (a name reused across files
                 would make hit counts ambiguous), and exercised by
                 tests/test_fault_injection.cpp — an uncovered fault point is
                 dead recovery code.

numerics-hygiene src/{la,sparse,mor,solve,analysis} (the numerics core) must
                 not use M_PI (not portable C++; util/constants), rand()
                 (non-reproducible; util generators), or std::unordered_map
                 (iteration order varies across libraries — a determinism
                 hazard in result-shaping code; std::map or sorted vectors).

naked-mutex      src/ outside util/thread_annotations.h must not name the raw
                 std:: locking primitives; the annotated util::Mutex /
                 util::MutexLock / util::CondVar wrappers keep every lock
                 visible to Clang's -Wthread-safety analysis.

future-in-lock   src/service/ must not .get()/.wait() a future while a
                 MutexLock is in scope: the serving layer's liveness rests on
                 build-outside-the-lock (SingleFlight's contract), and a
                 future wait under a lock is a latent deadlock even when the
                 thread-safety analysis cannot see it (the wait blocks on
                 another thread that may need the same lock).

no-promise       src/service/ must not construct std::promise: per-query
                 promise/future pairs pay one shared-state heap allocation
                 each, which is exactly what the slab result channels
                 (util::ResultSlab and its ResultTicket) exist to avoid.
                 Tests and the util layer are out of scope.

simd-confined    Raw vector intrinsics (immintrin.h, _mm*/__m128/__m256/
                 __m512 tokens) are allowed in src/la/simd.h ONLY. Everything
                 else programs against Pack<T> and the pointer kernels, so
                 the portable scalar arm stays complete and the bit-identity
                 contract has a single place to audit.

obs-naming       Every literal metric name registered or exported in src/
                 (obs::Registry counter/gauge/histogram, obs::Snapshot
                 add_counter/add_gauge/add_histogram) is `component.metric`
                 style and appears in exactly ONE file — the registry dedupes
                 by name, so a name reused across files would silently merge
                 two unrelated instruments. Names assembled at runtime (the
                 "fault." + point and slab-prefix exports) are exempt by
                 construction: they carry no literal to scan.
"""

import os
import re
import sys

NUMERICS_DIRS = ("la", "sparse", "mor", "solve", "analysis")

NAKED_PRIMITIVES = (
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::condition_variable",
    "std::condition_variable_any",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
)

FAULT_POINT_RE = re.compile(r'VARMOR_FAULT_POINT(?:_DETAIL)?\s*\(\s*"([^"]+)"')
FAULT_NAME_RE = re.compile(r"^[a-z0-9_]+\.[a-z0-9_]+$")
OBS_REGISTER_RE = re.compile(
    r'\b(?:add_counter|add_gauge|add_histogram|counter|gauge|histogram)'
    r'\s*\(\s*"([^"]+)"')
OBS_NAME_RE = re.compile(r"^[a-z0-9_]+\.[a-z0-9_]+$")
RAND_RE = re.compile(r"\b(?:std::)?rand\s*\(")
M_PI_RE = re.compile(r"\bM_PI\b")
FUTURE_DECL_RE = re.compile(r"std::(?:shared_)?future\s*<[^;{}]*?>\s+(\w+)\s*[;=({]")
GET_FUTURE_RE = re.compile(r"\b(?:auto|const auto)\s+(\w+)\s*=[^;]*\.get_future\(\)")
MUTEX_LOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(")


def strip_code(text, keep_strings):
    """Blanks comments (and, unless keep_strings, string/char literal
    contents) while preserving line structure, so findings keep real line
    numbers and tokens inside comments or messages never trip a rule."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "string"
                out.append(ch)
                i += 1
                continue
            if ch == "'":
                state = "char"
                out.append(ch)
                i += 1
                continue
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append(ch)
            else:
                out.append(" ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(ch if ch == "\n" else " ")
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                out.append(ch if keep_strings else " ")
                if nxt:
                    out.append(nxt if keep_strings else " ")
                    i += 2
                    continue
            elif ch == quote:
                state = "code"
                out.append(ch)
            else:
                out.append(ch if keep_strings else " ")
        i += 1
    return "".join(out)


def iter_source_files(root, subdir):
    base = os.path.join(root, subdir)
    for dirpath, _dirnames, filenames in os.walk(base):
        for name in sorted(filenames):
            if name.endswith((".h", ".hpp", ".cpp", ".cc")):
                yield os.path.join(dirpath, name)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []

    def report(self, path, line, rule, message):
        rel = os.path.relpath(path, self.root)
        self.findings.append(f"{rel}:{line}: [{rule}] {message}")

    # -- fault-points ------------------------------------------------------
    def check_fault_points(self):
        driver_path = os.path.join(self.root, "tests", "test_fault_injection.cpp")
        try:
            with open(driver_path, encoding="utf-8") as f:
                driver_text = f.read()
        except OSError:
            driver_text = None

        seen = {}  # name -> first (path, line)
        for path in iter_source_files(self.root, "src"):
            with open(path, encoding="utf-8") as f:
                code = strip_code(f.read(), keep_strings=True)
            for m in FAULT_POINT_RE.finditer(code):
                name, line = m.group(1), line_of(code, m.start())
                if not FAULT_NAME_RE.match(name):
                    self.report(path, line, "fault-points",
                                f'fault point "{name}" is not component.event '
                                "style ([a-z0-9_]+.[a-z0-9_]+)")
                if name in seen and seen[name][0] != path:
                    first = seen[name]
                    self.report(path, line, "fault-points",
                                f'fault point "{name}" is also defined in '
                                f"{os.path.relpath(first[0], self.root)}:{first[1]} "
                                "— a name must be confined to one file")
                else:
                    seen.setdefault(name, (path, line))
                if driver_text is not None and f'"{name}"' not in driver_text:
                    self.report(path, line, "fault-points",
                                f'fault point "{name}" is not exercised by '
                                "tests/test_fault_injection.cpp")
        if driver_text is None:
            self.report(driver_path, 1, "fault-points",
                        "missing tests/test_fault_injection.cpp — fault-point "
                        "coverage cannot be checked")

    # -- obs-naming --------------------------------------------------------
    def check_obs_naming(self):
        seen = {}  # name -> first (path, line)
        for path in iter_source_files(self.root, "src"):
            with open(path, encoding="utf-8") as f:
                code = strip_code(f.read(), keep_strings=True)
            for m in OBS_REGISTER_RE.finditer(code):
                name, line = m.group(1), line_of(code, m.start())
                if not OBS_NAME_RE.match(name):
                    self.report(path, line, "obs-naming",
                                f'metric name "{name}" is not component.metric '
                                "style ([a-z0-9_]+.[a-z0-9_]+)")
                if name in seen and seen[name][0] != path:
                    first = seen[name]
                    self.report(path, line, "obs-naming",
                                f'metric name "{name}" is also registered in '
                                f"{os.path.relpath(first[0], self.root)}:{first[1]} "
                                "— a name must be confined to one file (the "
                                "registry would silently merge the instruments)")
                else:
                    seen.setdefault(name, (path, line))

    # -- numerics-hygiene --------------------------------------------------
    def check_numerics_hygiene(self):
        for subdir in NUMERICS_DIRS:
            for path in iter_source_files(self.root, os.path.join("src", subdir)):
                with open(path, encoding="utf-8") as f:
                    code = strip_code(f.read(), keep_strings=False)
                for regex, what, instead in (
                        (M_PI_RE, "M_PI", "util/constants"),
                        (RAND_RE, "rand()", "the util generators"),
                        (re.compile(r"\bstd::unordered_map\b"), "std::unordered_map",
                         "std::map or a sorted vector"),
                ):
                    for m in regex.finditer(code):
                        self.report(path, line_of(code, m.start()), "numerics-hygiene",
                                    f"{what} in the numerics core — use {instead}")

    # -- naked-mutex -------------------------------------------------------
    def check_naked_mutex(self):
        allowed = os.path.normpath(
            os.path.join(self.root, "src", "util", "thread_annotations.h"))
        for path in iter_source_files(self.root, "src"):
            if os.path.normpath(path) == allowed:
                continue
            with open(path, encoding="utf-8") as f:
                code = strip_code(f.read(), keep_strings=False)
            for token in NAKED_PRIMITIVES:
                for m in re.finditer(re.escape(token) + r"\b", code):
                    self.report(path, line_of(code, m.start()), "naked-mutex",
                                f"{token} outside util/thread_annotations.h — "
                                "use the annotated util::Mutex/MutexLock/CondVar")

    # -- simd-confined -----------------------------------------------------
    def check_simd_confined(self):
        allowed = os.path.normpath(os.path.join(self.root, "src", "la", "simd.h"))
        intrinsic_re = re.compile(
            r"\bimmintrin\.h\b|\b_mm\w*\s*\(|\b__m(?:128|256|512)[di]?\b")
        for path in iter_source_files(self.root, "src"):
            if os.path.normpath(path) == allowed:
                continue
            with open(path, encoding="utf-8") as f:
                code = strip_code(f.read(), keep_strings=False)
            for m in intrinsic_re.finditer(code):
                self.report(path, line_of(code, m.start()), "simd-confined",
                            f"raw vector intrinsic '{m.group(0).strip()}' outside "
                            "src/la/simd.h — program against Pack<T> / the "
                            "simd:: pointer kernels")

    # -- no-promise --------------------------------------------------------
    def check_no_promise(self):
        promise_re = re.compile(r"\bstd::promise\b")
        for path in iter_source_files(self.root, os.path.join("src", "service")):
            with open(path, encoding="utf-8") as f:
                code = strip_code(f.read(), keep_strings=False)
            for m in promise_re.finditer(code):
                self.report(path, line_of(code, m.start()), "no-promise",
                            "std::promise in the serving layer — use the slab "
                            "result channels (util::ResultSlab / ResultTicket); "
                            "a promise allocates shared state per query")

    # -- future-in-lock ----------------------------------------------------
    def check_future_in_lock(self):
        for path in iter_source_files(self.root, os.path.join("src", "service")):
            with open(path, encoding="utf-8") as f:
                code = strip_code(f.read(), keep_strings=False)
            futures = set(FUTURE_DECL_RE.findall(code))
            futures.update(GET_FUTURE_RE.findall(code))
            if not futures:
                continue
            wait_re = re.compile(
                r"\b(" + "|".join(re.escape(f) for f in futures) + r")\s*\.\s*(get|wait)\s*\(")
            # Brace-scope walk: a MutexLock declared at depth d guards until
            # the scope that contains it closes (depth drops below d).
            lock_depths = []
            event_re = re.compile(r"[{}]|" + MUTEX_LOCK_RE.pattern + "|" + wait_re.pattern)
            depth = 0
            for m in event_re.finditer(code):
                tok = m.group(0)
                if tok == "{":
                    depth += 1
                elif tok == "}":
                    depth -= 1
                    while lock_depths and lock_depths[-1] > depth:
                        lock_depths.pop()
                elif tok.startswith("MutexLock"):
                    lock_depths.append(depth)
                elif lock_depths:
                    name, op = m.group(1), m.group(2)
                    self.report(path, line_of(code, m.start()), "future-in-lock",
                                f"{name}.{op}() while a MutexLock is held — "
                                "waits on futures must run outside the lock "
                                "(build-outside-the-lock contract)")

    def run(self):
        self.check_fault_points()
        self.check_obs_naming()
        self.check_numerics_hygiene()
        self.check_naked_mutex()
        self.check_simd_confined()
        self.check_no_promise()
        self.check_future_in_lock()
        return self.findings


def main(argv):
    root = os.path.abspath(argv[1]) if len(argv) > 1 else os.getcwd()
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"varmor-lint: no src/ under {root}", file=sys.stderr)
        return 2
    findings = Linter(root).run()
    for finding in findings:
        print(finding)
    if findings:
        print(f"varmor-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("varmor-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
